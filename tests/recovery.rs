//! Crash-recovery kill-point harness.
//!
//! A "crash" is `std::mem::forget` of the kernel (no destructors: no
//! rollback, no flush — exactly a process kill), after which the database
//! is reopened from what survived on the device: flushed pages, the
//! metadata snapshot and the *forced* WAL prefix. Both device backends
//! are exercised: a shared [`SimDisk`] `Arc` plays the surviving medium
//! in-memory, and [`FileDisk`] proves the same against real files.
//!
//! Kill points covered (ISSUE 3 acceptance):
//!   * no checkpoint since build (redo from the initial snapshot),
//!   * mid-transaction (loser rolled back),
//!   * post-commit-pre-flush (redo makes the commit win),
//!   * after in-process rollback (no resurrection),
//!   * after checkpoint + more commits (bounded redo),
//!   * a proptest-style randomized interleaving of INSERT / MODIFY /
//!     DELETE with commits at random positions.

use prima::{Prima, QueryOptions, Value};
use prima_storage::{BlockDevice, SimDisk};
use std::collections::BTreeMap;
use std::sync::Arc;

const DDL: &str = "
    CREATE ATOM_TYPE part (
        part_id : IDENTIFIER,
        part_no : INTEGER,
        name    : CHAR_VAR )
    KEYS_ARE (part_no);
";

fn build_on(device: Arc<dyn BlockDevice>) -> Prima {
    Prima::builder()
        .buffer_bytes(1 << 20)
        .device(device)
        .durable()
        .build_with_ddl(DDL)
        .unwrap()
}

/// The kill switch: drop nothing, run no destructors.
fn crash(db: Prima) {
    std::mem::forget(db);
}

fn part_nos(db: &Prima) -> Vec<i64> {
    let set = db
        .session()
        .query("SELECT ALL FROM part", &QueryOptions::default())
        .unwrap()
        .set;
    let mut nos: Vec<i64> = set
        .molecules
        .iter()
        .map(|m| match &m.root.atom.values[1] {
            Value::Int(n) => *n,
            v => panic!("part_no should be Int, got {v:?}"),
        })
        .collect();
    nos.sort_unstable();
    nos
}

fn names_by_no(db: &Prima) -> BTreeMap<i64, String> {
    let set = db
        .session()
        .query("SELECT ALL FROM part", &QueryOptions::default())
        .unwrap()
        .set;
    set.molecules
        .iter()
        .map(|m| {
            let v = &m.root.atom.values;
            let no = match &v[1] {
                Value::Int(n) => *n,
                other => panic!("part_no should be Int, got {other:?}"),
            };
            let name = match &v[2] {
                Value::Str(s) => s.clone(),
                other => panic!("name should be Str, got {other:?}"),
            };
            (no, name)
        })
        .collect()
}

fn insert_parts(db: &Prima, nos: std::ops::Range<i64>) {
    let s = db.session();
    for n in nos {
        s.execute(&format!("INSERT part (part_no: {n}, name: 'p{n}')")).unwrap();
    }
    s.commit().unwrap();
}

#[test]
fn committed_work_survives_crash_without_checkpoint() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    insert_parts(&db, 0..25);
    // Kill point: nothing flushed since the initial (empty) checkpoint —
    // every committed page lives only in WAL redo records.
    crash(db);
    let db = Prima::open_device(device).unwrap();
    assert_eq!(part_nos(&db), (0..25).collect::<Vec<_>>());
}

#[test]
fn mid_transaction_crash_rolls_the_loser_back() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    insert_parts(&db, 0..5);
    // An open transaction: inserts, a modify and a delete — never
    // committed. Forgetting the session skips even the in-process abort.
    let s = db.session();
    s.execute("INSERT part (part_no: 100, name: 'phantom')").unwrap();
    s.execute("MODIFY part SET name = 'mutated' WHERE part_no = 2").unwrap();
    s.execute("DELETE FROM part WHERE part_no = 4").unwrap();
    // Force the txn's WAL records out as a flush would (steal): even a
    // durable *prefix* of a loser must roll back cleanly.
    db.storage().flush().unwrap();
    std::mem::forget(s);
    crash(db);
    let db = Prima::open_device(device).unwrap();
    assert_eq!(part_nos(&db), vec![0, 1, 2, 3, 4], "loser fully undone");
    assert_eq!(names_by_no(&db)[&2], "p2", "modify rolled back");
}

#[test]
fn commit_then_crash_before_any_flush() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    // Two committed transactions, one open one, then the kill point
    // right after the second commit returns (pages still dirty).
    insert_parts(&db, 0..10);
    let s = db.session();
    s.execute("MODIFY part SET name = 'renamed' WHERE part_no = 7").unwrap();
    s.commit().unwrap();
    s.execute("INSERT part (part_no: 999, name: 'uncommitted')").unwrap();
    std::mem::forget(s);
    crash(db);
    let db = Prima::open_device(device).unwrap();
    assert_eq!(part_nos(&db), (0..10).collect::<Vec<_>>());
    assert_eq!(names_by_no(&db)[&7], "renamed", "committed modify redone");
}

#[test]
fn rolled_back_work_stays_dead_after_crash() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    insert_parts(&db, 0..3);
    let s = db.session();
    s.execute("INSERT part (part_no: 50, name: 'ghost')").unwrap();
    s.rollback().unwrap();
    crash(db);
    let db = Prima::open_device(device).unwrap();
    assert_eq!(part_nos(&db), vec![0, 1, 2]);
    // The key is free again after recovery.
    let s = db.session();
    s.execute("INSERT part (part_no: 50, name: 'reborn')").unwrap();
    s.commit().unwrap();
    assert_eq!(part_nos(&db), vec![0, 1, 2, 50]);
}

#[test]
fn checkpoint_bounds_redo_and_preserves_later_commits() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    insert_parts(&db, 0..20);
    db.checkpoint().unwrap();
    insert_parts(&db, 20..30);
    let s = db.session();
    s.execute("DELETE FROM part WHERE part_no = 0").unwrap();
    s.commit().unwrap();
    crash(db);
    let db = Prima::open_device(device).unwrap();
    assert_eq!(part_nos(&db), (1..30).collect::<Vec<_>>());
}

#[test]
fn checkpoint_requires_quiesced_kernel() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(device);
    let s = db.session();
    s.execute("INSERT part (part_no: 1, name: 'open')").unwrap();
    assert!(db.checkpoint().is_err(), "active transaction blocks checkpoint");
    s.commit().unwrap();
    db.checkpoint().unwrap();
}

#[test]
fn volatile_kernel_rejects_checkpoint() {
    let db = Prima::builder().build_with_ddl(DDL).unwrap();
    assert!(!db.is_durable());
    assert!(db.checkpoint().is_err());
}

#[test]
fn surrogates_of_deleted_atoms_are_not_reused_after_recovery() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    insert_parts(&db, 0..3);
    // Capture the highest surrogate, then delete its atom and crash: a
    // rescan alone cannot see the deleted atom's id any more.
    let max_seq = |db: &Prima| {
        db.session()
            .query("SELECT ALL FROM part", &QueryOptions::default())
            .unwrap()
            .set
            .molecules
            .iter()
            .map(|m| match &m.root.atom.values[0] {
                Value::Id(id) => id.seq,
                v => panic!("identifier expected, got {v:?}"),
            })
            .max()
            .unwrap_or(0)
    };
    let before = max_seq(&db);
    let s = db.session();
    s.execute("DELETE FROM part WHERE part_no = 2").unwrap();
    s.commit().unwrap();
    crash(db);
    let db = Prima::open_device(device).unwrap();
    let s = db.session();
    s.execute("INSERT part (part_no: 9, name: 'after-crash')").unwrap();
    s.commit().unwrap();
    assert!(
        max_seq(&db) > before,
        "surrogates are never reused: new atom got seq {} <= pre-crash max {before}",
        max_seq(&db)
    );
}

#[test]
fn reopened_kernel_accepts_new_work_and_recovers_again() {
    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    insert_parts(&db, 0..5);
    crash(db);
    // First recovery, more committed work, second crash, second recovery:
    // surrogate counters and page allocation must continue seamlessly.
    let db = Prima::open_device(Arc::clone(&device)).unwrap();
    insert_parts(&db, 5..10);
    let before = names_by_no(&db);
    crash(db);
    let db = Prima::open_device(device).unwrap();
    assert_eq!(part_nos(&db), (0..10).collect::<Vec<_>>());
    assert_eq!(names_by_no(&db), before);
}

#[test]
fn file_disk_database_survives_process_style_crash() {
    let dir = std::env::temp_dir().join(format!("prima-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    struct Guard(std::path::PathBuf);
    impl Drop for Guard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let guard = Guard(dir.clone());

    let db = Prima::builder()
        .buffer_bytes(1 << 20)
        .path(&dir)
        .unwrap()
        .build_with_ddl(DDL)
        .unwrap();
    assert!(db.is_durable());
    insert_parts(&db, 0..40);
    let s = db.session();
    s.execute("INSERT part (part_no: 777, name: 'loser')").unwrap();
    std::mem::forget(s);
    crash(db);

    // Reopen purely from the directory — a genuinely new "process view".
    let db = Prima::open(&dir).unwrap();
    assert_eq!(part_nos(&db), (0..40).collect::<Vec<_>>());
    // And the database keeps working durably after recovery.
    insert_parts(&db, 40..45);
    drop(db);
    let db = Prima::open(&dir).unwrap();
    assert_eq!(part_nos(&db), (0..45).collect::<Vec<_>>());
    drop(db);
    drop(guard);
}

// ---------------------------------------------------------------------
// Randomized interleaving: a model-checked kill point
// ---------------------------------------------------------------------

/// One scripted step against both the kernel and an in-memory model.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(i64),
    Modify(i64),
    Delete(i64),
    Commit,
}

fn run_random_case(seed: u64, steps: usize) {
    // Deterministic splitmix64 stream per seed.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };

    let device: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let db = build_on(Arc::clone(&device));
    // committed = model of the database at the last commit;
    // pending = model including the open transaction.
    let mut committed: BTreeMap<i64, String> = BTreeMap::new();
    let mut pending = committed.clone();
    let session = db.session();
    let mut version = 0u64;

    for step in 0..steps {
        let roll = next() % 100;
        let op = if roll < 40 {
            Op::Insert((next() % 64) as i64)
        } else if roll < 60 {
            Op::Modify((next() % 64) as i64)
        } else if roll < 75 {
            Op::Delete((next() % 64) as i64)
        } else {
            Op::Commit
        };
        match op {
            Op::Insert(no) => {
                let r = session.execute(&format!(
                    "INSERT part (part_no: {no}, name: 'v{version}')"
                ));
                match pending.entry(no) {
                    std::collections::btree_map::Entry::Occupied(_) => {
                        assert!(r.is_err(), "step {step}: duplicate key {no} must fail");
                    }
                    std::collections::btree_map::Entry::Vacant(e) => {
                        r.unwrap();
                        e.insert(format!("v{version}"));
                    }
                }
                version += 1;
            }
            Op::Modify(no) => {
                if let Some(name) = pending.get_mut(&no) {
                    session
                        .execute(&format!(
                            "MODIFY part SET name = 'm{version}' WHERE part_no = {no}"
                        ))
                        .unwrap();
                    *name = format!("m{version}");
                    version += 1;
                }
            }
            Op::Delete(no) => {
                if pending.contains_key(&no) {
                    session
                        .execute(&format!("DELETE FROM part WHERE part_no = {no}"))
                        .unwrap();
                    pending.remove(&no);
                }
            }
            Op::Commit => {
                session.commit().unwrap();
                committed = pending.clone();
                // Occasionally flush to exercise steal/WAL-before-data.
                if next() % 4 == 0 {
                    db.storage().flush().unwrap();
                }
            }
        }
    }

    // Kill point: whatever was not committed must vanish.
    std::mem::forget(session);
    crash(db);
    let db = Prima::open_device(device).unwrap();
    assert_eq!(
        names_by_no(&db),
        committed,
        "seed {seed}: recovered state must equal the committed prefix"
    );
}

#[test]
fn randomized_interleavings_recover_to_committed_prefix() {
    for case in 0u64..12 {
        run_random_case(0xc0ffee ^ (case * 0x9e37_79b9), 80);
    }
}

// ---------------------------------------------------------------------
// Direct atom interface: auto-commit transactional semantics (ISSUE 5)
// ---------------------------------------------------------------------

/// `Prima::modify` outside any explicit transaction runs in an internal
/// auto-commit session: its commit *forces* the WAL, and a process that
/// dies before that force leaves nothing recoverable of the call. Pinned
/// by arming the fault disk to crash on the very next WAL force — on the
/// pre-PR code `modify` bypassed the transaction layer entirely, never
/// forced, and the armed crash point was simply not reached.
#[test]
fn direct_modify_killed_before_its_commit_force_is_rolled_back() {
    use prima_storage::{CrashPoint, FaultDisk, FaultSchedule};
    let inner: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let mut sched = FaultSchedule::manual(1);
    sched.persist_pct = 100;
    sched.torn_in_flight = false;
    let fault = FaultDisk::new(Arc::clone(&inner), sched);
    let db = build_on(Arc::clone(&fault) as Arc<dyn BlockDevice>);
    let id = db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("old".into()))]).unwrap();

    // The next WAL force is the one carrying the modify's internal
    // commit: the call must die *inside* its own durability point.
    fault.arm(CrashPoint::OnWalForce(fault.wal_forces() + 1));
    let err = db.modify(id, &[("name", Value::Str("new".into()))]);
    assert!(
        err.is_err(),
        "modify must reach (and die on) its commit force — on the pre-PR \
         code it bypassed the txn layer and never forced"
    );
    assert!(fault.has_crashed(), "the armed force fired during the modify");
    drop(db);

    // Restart recovery: the un-forced modify is gone, the insert's
    // committed state is intact.
    let db = Prima::open_device(fault.persisted_device()).unwrap();
    assert_eq!(names_by_no(&db), BTreeMap::from([(1, "old".to_string())]));
}

/// The flip side: a direct call that *returned* is durable on its own —
/// pre-PR it was "durable at the next force", i.e. lost by a crash right
/// after the call.
#[test]
fn direct_modify_that_returned_survives_an_immediate_crash() {
    use prima_storage::{FaultDisk, FaultSchedule};
    let inner: Arc<dyn BlockDevice> = Arc::new(SimDisk::new());
    let mut sched = FaultSchedule::manual(2);
    sched.persist_pct = 0; // nothing unforced survives
    sched.torn_in_flight = false;
    let fault = FaultDisk::new(Arc::clone(&inner), sched);
    let db = build_on(Arc::clone(&fault) as Arc<dyn BlockDevice>);
    let id = db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("old".into()))]).unwrap();
    db.modify(id, &[("name", Value::Str("acked".into()))]).unwrap();

    // Plug pulled immediately after the call returned: no flush, no
    // checkpoint, the drive cache is lost wholesale.
    fault.crash_now();
    drop(db);
    let db = Prima::open_device(fault.persisted_device()).unwrap();
    assert_eq!(
        names_by_no(&db),
        BTreeMap::from([(1, "acked".to_string())]),
        "an acknowledged direct modify must be durable by itself"
    );

    // And the recovered kernel keeps serving transactional work.
    let s = db.session();
    s.execute("INSERT part (part_no: 2, name: 'post')").unwrap();
    s.commit().unwrap();
    assert_eq!(part_nos(&db), vec![1, 2]);
}
