//! Contention robustness: bounded-wait queues, deadlock detection and
//! transparent session retry under genuinely concurrent load.
//!
//! Counterpart to `tests/isolation.rs` (which pins no-wait mode and
//! asserts on the conflicts themselves): here the lock table runs in its
//! blocking configurations and the scenarios use real threads. Deadlock
//! tests give the table a generous timeout so cycles are resolved by
//! detection (exactly one victim), never by the clock; timeout tests use
//! a short one. The conflict-heavy workload at the end is the headline
//! property: with the default bounded-wait config and the default retry
//! policy, no caller ever sees a conflict error.

use prima::txn::TxnError;
use prima::{LockConfig, Prima, PrimaError, QueryOptions, RetryPolicy, Value};
use std::sync::Barrier;
use std::time::Duration;

const DDL: &str = "
CREATE ATOM_TYPE part
  ( id : IDENTIFIER, part_no : INTEGER, name : CHAR_VAR,
    sub : SET_OF (REF_TO (part.super)),
    super : SET_OF (REF_TO (part.sub)) )
KEYS_ARE (part_no);
";

fn db_with(config: LockConfig) -> Prima {
    Prima::builder().lock_config(config).build_with_ddl(DDL).unwrap()
}

/// Generous timeout: deadlocks must be resolved by detection, not by
/// the clock — a `LockTimeout` in these tests is a failure.
fn patient() -> LockConfig {
    LockConfig::bounded(Duration::from_secs(5), 64)
}

fn is_deadlock(e: &TxnError) -> bool {
    matches!(e, TxnError::Deadlock { .. })
}

/// Blocks until at least `want` waiters are parked in the lock table.
fn wait_for_queue(db: &Prima, want: usize) {
    let table = db.txn_manager().lock_table();
    for _ in 0..4000 {
        if table.queue_depths().iter().map(|(_, d)| *d).sum::<usize>() >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("expected {want} parked waiters, queues stayed at {:?}", table.queue_depths());
}

fn names(db: &Prima) -> Vec<(i64, String)> {
    let s = db.session();
    let set = s.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap().set;
    s.commit().unwrap();
    let mut out: Vec<(i64, String)> = set
        .molecules
        .iter()
        .map(|m| {
            let v = &m.root.atom.values;
            let no = match &v[1] {
                Value::Int(n) => *n,
                other => panic!("part_no should be Int, got {other:?}"),
            };
            let name = match &v[2] {
                Value::Str(s) => s.clone(),
                other => panic!("name should be Str, got {other:?}"),
            };
            (no, name)
        })
        .collect();
    out.sort();
    out
}

// ---------------------------------------------------------------------
// Deterministic deadlocks (kernel transactions)
// ---------------------------------------------------------------------

/// Locks `first`, rendezvouses, then tries `second` — the AB/BA shape.
/// Commits on success, aborts on error, reports what happened.
fn ab_ba(
    db: &Prima,
    barrier: &Barrier,
    first: prima::AtomId,
    second: prima::AtomId,
    tag: &str,
) -> Result<(), TxnError> {
    let t = db.begin().unwrap();
    t.modify_atom(first, &[(2, Value::Str(tag.into()))]).unwrap();
    barrier.wait();
    match t.modify_atom(second, &[(2, Value::Str(tag.into()))]) {
        Ok(()) => {
            t.commit().unwrap();
            Ok(())
        }
        Err(e) => {
            t.abort().unwrap();
            Err(e)
        }
    }
}

#[test]
fn two_txn_ab_ba_deadlock_aborts_exactly_one_victim() {
    let db = db_with(patient());
    let a = db.insert("part", &[("part_no", Value::Int(1))]).unwrap();
    let b = db.insert("part", &[("part_no", Value::Int(2))]).unwrap();

    let barrier = Barrier::new(2);
    let results = std::thread::scope(|s| {
        let h1 = s.spawn(|| ab_ba(&db, &barrier, a, b, "t1"));
        let h2 = s.spawn(|| ab_ba(&db, &barrier, b, a, "t2"));
        [h1.join().unwrap(), h2.join().unwrap()]
    });

    // Exactly one victim, and it is a detected deadlock — never a
    // timeout, never both sides, never a silent hang (we got here).
    let errors: Vec<&TxnError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(errors.len(), 1, "exactly one transaction must be victimized: {results:?}");
    assert!(is_deadlock(errors[0]), "victim must see Deadlock, got: {}", errors[0]);

    // The survivor's writes are complete; the victim's undo erased its
    // half-done first write (both atoms carry the survivor's tag).
    let winner = if results[0].is_ok() { "t1" } else { "t2" };
    assert_eq!(names(&db), vec![(1, winner.to_string()), (2, winner.to_string())]);

    let stats = db.lock_stats();
    assert!(stats.deadlocks_detected >= 1, "detector never fired: {}", stats.detail());
    assert_eq!(stats.victims, 1, "one cycle, one victim: {}", stats.detail());
    assert_eq!(stats.timeouts, 0, "deadlock must be detected, not timed out: {}", stats.detail());
}

#[test]
fn victim_is_the_txn_with_fewest_locks_and_its_undo_is_applied() {
    let db = db_with(patient());
    let a = db.insert("part", &[("part_no", Value::Int(1), ), ("name", Value::Str("base".into()))]).unwrap();
    let b = db.insert("part", &[("part_no", Value::Int(2)), ("name", Value::Str("base".into()))]).unwrap();

    let barrier = Barrier::new(2);
    let results = std::thread::scope(|s| {
        // t1 carries extra inserted atoms — strictly more locks held.
        let h1 = s.spawn(|| {
            let t = db.begin().unwrap();
            for k in 101..104i64 {
                t.insert_atom(0, vec![Value::Null, Value::Int(k), Value::Str("bulk".into())])
                    .unwrap();
            }
            t.modify_atom(a, &[(2, Value::Str("t1".into()))]).unwrap();
            barrier.wait();
            match t.modify_atom(b, &[(2, Value::Str("t1".into()))]) {
                Ok(()) => {
                    t.commit().unwrap();
                    Ok(())
                }
                Err(e) => {
                    t.abort().unwrap();
                    Err(e)
                }
            }
        });
        // t2 holds only its marker insert and one atom.
        let h2 = s.spawn(|| {
            let t = db.begin().unwrap();
            t.insert_atom(0, vec![Value::Null, Value::Int(201), Value::Str("loser".into())])
                .unwrap();
            t.modify_atom(b, &[(2, Value::Str("t2".into()))]).unwrap();
            barrier.wait();
            match t.modify_atom(a, &[(2, Value::Str("t2".into()))]) {
                Ok(()) => {
                    t.commit().unwrap();
                    Ok(())
                }
                Err(e) => {
                    t.abort().unwrap();
                    Err(e)
                }
            }
        });
        [h1.join().unwrap(), h2.join().unwrap()]
    });

    // Victim choice is deterministic: t2 holds strictly fewer locks.
    assert!(results[0].is_ok(), "the lock-rich transaction must survive: {results:?}");
    assert!(
        results[1].as_ref().err().is_some_and(is_deadlock),
        "the lock-poor transaction must be the victim: {results:?}"
    );

    // The victim's undo is fully applied: its marker is gone, its write
    // to `b` is rolled back; the survivor's bulk inserts and writes are
    // all there.
    assert_eq!(
        names(&db),
        vec![
            (1, "t1".to_string()),
            (2, "t1".to_string()),
            (101, "bulk".to_string()),
            (102, "bulk".to_string()),
            (103, "bulk".to_string()),
        ]
    );
}

#[test]
fn three_txn_cycle_is_broken_by_a_single_victim() {
    let db = db_with(patient());
    let atoms: Vec<prima::AtomId> = (0..3i64)
        .map(|i| db.insert("part", &[("part_no", Value::Int(i))]).unwrap())
        .collect();

    let barrier = Barrier::new(3);
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let atoms = &atoms;
                let barrier = &barrier;
                let db = &db;
                s.spawn(move || {
                    ab_ba(db, barrier, atoms[i], atoms[(i + 1) % 3], &format!("t{i}"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });

    let errors: Vec<&TxnError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(errors.len(), 1, "a 3-cycle needs exactly one victim: {results:?}");
    assert!(is_deadlock(errors[0]), "got: {}", errors[0]);

    let stats = db.lock_stats();
    assert_eq!(stats.victims, 1, "{}", stats.detail());
    assert_eq!(stats.timeouts, 0, "{}", stats.detail());
    assert_eq!(db.txn_manager().lock_table().locked_targets(), 0, "all locks drained");
}

// ---------------------------------------------------------------------
// Upgrade deadlock through the session/query path
// ---------------------------------------------------------------------

#[test]
fn session_upgrade_deadlock_victimizes_one_and_the_other_inserts() {
    let db = db_with(patient());
    for i in 0..4 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str("v".into()))])
            .unwrap();
    }

    // Both sessions scan (extension Shared), then INSERT in the same
    // transaction (extension IntentExclusive) — the S→IX upgrade
    // deadlock. In-transaction statements are never retried, so the
    // victim's Deadlock surfaces raw.
    let barrier = Barrier::new(2);
    let results = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2i64)
            .map(|i| {
                let db = &db;
                let barrier = &barrier;
                s.spawn(move || {
                    let session = db.session();
                    // Explicit transaction: the scan must take the
                    // extension Shared (a snapshot read would not), so
                    // the INSERT below is the S→IX upgrade.
                    session.begin().unwrap();
                    session.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
                    barrier.wait();
                    match session
                        .execute(&format!("INSERT part (part_no: {}, name: 'fresh')", 100 + i))
                    {
                        Ok(_) => {
                            session.commit().unwrap();
                            Ok(())
                        }
                        Err(e) => {
                            session.rollback().unwrap();
                            Err(e)
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });

    let errors: Vec<&PrimaError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert_eq!(errors.len(), 1, "exactly one upgrader is victimized: {results:?}");
    assert!(
        matches!(errors[0], PrimaError::Txn(TxnError::Deadlock { .. })),
        "upgrade cycle must end in Deadlock, got: {}",
        errors[0]
    );
    assert!(errors[0].is_retryable(), "a deadlock victim is retryable by definition");

    // The survivor's row committed, the victim's never came into being.
    let committed = names(&db);
    let inserted: Vec<i64> =
        committed.iter().map(|(no, _)| *no).filter(|no| *no >= 100).collect();
    let winner = if results[0].is_ok() { 100 } else { 101 };
    assert_eq!(inserted, vec![winner]);

    let stats = db.lock_stats();
    assert!(stats.deadlocks_detected >= 1, "{}", stats.detail());
    assert_eq!(stats.timeouts, 0, "{}", stats.detail());
}

// ---------------------------------------------------------------------
// Bounded waits: timeout when the holder stays, grant when it goes
// ---------------------------------------------------------------------

#[test]
fn bounded_wait_times_out_against_a_stubborn_holder_then_parks_through_a_commit() {
    let db = db_with(LockConfig::bounded(Duration::from_millis(60), 8));
    db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("old".into()))])
        .unwrap();

    let writer = db.session();
    writer.execute("MODIFY part SET name = 'new' WHERE part_no = 1").unwrap();

    // Retry off: the oracle is the timeout itself. In-transaction read —
    // outside one it would snapshot past the writer without waiting.
    let mut reader = db.session();
    reader.set_retry_policy(RetryPolicy::off());
    reader.begin().unwrap();
    let before = db.lock_stats();
    let err = reader
        .query("SELECT ALL FROM part WHERE part_no = 1", &QueryOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, PrimaError::Txn(TxnError::LockTimeout { .. })),
        "bounded wait against a live writer must time out, got: {err}"
    );
    assert!(err.is_lock_conflict() && err.is_retryable());
    reader.rollback().unwrap();

    let waited = db.lock_stats().since(&before);
    assert!(waited.timeouts >= 1, "timeout not counted: {}", waited.detail());
    assert!(waited.waits >= 1 && waited.wait_us_total > 0, "{}", waited.detail());

    // Same blocked shape, but now the writer commits while the reader is
    // parked: the reader is granted within its wait budget and sees
    // exactly the committed state — no retry involved.
    let reader_result = std::thread::scope(|s| {
        let db = &db;
        let h = s.spawn(move || {
            let mut r = db.session();
            r.set_retry_policy(RetryPolicy::off());
            r.begin().unwrap();
            let got = r.query("SELECT ALL FROM part WHERE part_no = 1", &QueryOptions::default());
            if got.is_ok() {
                r.commit().unwrap();
            }
            got.map(|res| res.set.molecules[0].root.atom.values[2].clone())
        });
        wait_for_queue(db, 1);
        writer.commit().unwrap();
        h.join().unwrap()
    });
    assert_eq!(reader_result.unwrap(), Value::Str("new".into()));
}

// ---------------------------------------------------------------------
// FIFO fairness end to end
// ---------------------------------------------------------------------

#[test]
fn queued_writer_is_not_overtaken_by_a_later_reader() {
    let db = db_with(patient());
    let id = db
        .insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("base".into()))])
        .unwrap();

    // Holder pins the atom exclusively; a writer parks behind it; a
    // reader arrives later. FIFO: when the holder commits, the writer
    // must get the atom first, so the reader observes the writer's value
    // — overtaking would hand it the holder's.
    let t_hold = db.begin().unwrap();
    t_hold.modify_atom(id, &[(2, Value::Str("hold".into()))]).unwrap();

    let read_value = std::thread::scope(|s| {
        let db = &db;
        let w = s.spawn(move || {
            let t = db.begin().unwrap();
            t.modify_atom(id, &[(2, Value::Str("w".into()))]).unwrap();
            t.commit().unwrap();
        });
        wait_for_queue(db, 1);
        let r = s.spawn(move || {
            let t = db.begin().unwrap();
            let atom = t.read_atom(id).unwrap();
            t.commit().unwrap();
            atom.values[2].clone()
        });
        wait_for_queue(db, 2);
        t_hold.commit().unwrap();
        w.join().unwrap();
        r.join().unwrap()
    });
    assert_eq!(read_value, Value::Str("w".into()), "reader overtook the queued writer");

    let stats = db.lock_stats();
    assert!(stats.max_queue_depth >= 2, "{}", stats.detail());
    assert_eq!(stats.deadlocks_detected, 0, "{}", stats.detail());
}

// ---------------------------------------------------------------------
// The headline property: conflict-heavy load, zero visible conflicts
// ---------------------------------------------------------------------

#[test]
fn conflict_heavy_sessions_see_zero_conflict_errors_under_default_retry() {
    // Default everything: bounded-wait lock table, default RetryPolicy.
    let db = db_with(LockConfig::default());
    db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("v0".into()))])
        .unwrap();

    const THREADS: usize = 4;
    const OPS: usize = 20;
    let round = Barrier::new(THREADS);
    let errors = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let db = &db;
                let round = &round;
                s.spawn(move || {
                    let session = db.session();
                    let mut errs: Vec<String> = Vec::new();
                    for i in 0..OPS {
                        // Every round, all threads fire at the same key
                        // at once, and the winner sits on its exclusive
                        // lock for a moment before committing: extension
                        // S→IX upgrades, atom X conflicts and deadlock
                        // shapes all occur; retry must absorb them all.
                        round.wait();
                        let stmt =
                            format!("MODIFY part SET name = 't{t}-{i}' WHERE part_no = 1");
                        if let Err(e) = session.execute(&stmt) {
                            errs.push(format!("{stmt}: {e}"));
                            let _ = session.rollback();
                            continue;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                        if let Err(e) = session.commit() {
                            errs.push(format!("commit after {stmt}: {e}"));
                            let _ = session.rollback();
                        }
                    }
                    errs
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    assert!(errors.is_empty(), "caller-visible errors under default retry: {errors:#?}");

    // The workload really contended — and the stats dump says so.
    let stats = db.lock_stats();
    assert!(stats.waits > 0, "no lock ever waited; workload was not contended: {}", stats.detail());
    let detail = stats.detail();
    for key in ["lock waits:", "lock timeouts:", "deadlocks detected:", "queue overflows:"] {
        assert!(detail.contains(key), "stats detail lost its '{key}' line:\n{detail}");
    }
    assert_eq!(stats.waiting_now, 0, "workload done, nobody should still be parked");
    assert_eq!(db.txn_manager().lock_table().locked_targets(), 0, "table fully drained");

    // Last committed value is one of the workload's writes.
    let final_names = names(&db);
    assert_eq!(final_names.len(), 1);
    assert!(final_names[0].1.starts_with('t'), "unexpected final value: {final_names:?}");
}
