//! Simulated block device ("files and blocks" level of Fig. 3.1).
//!
//! The paper's storage system sits on the file manager of the INCAS
//! operating system \[Ne87\], which supports exactly the block sizes
//! 1/2, 1, 2, 4 and 8 KByte and offers a *cluster mechanism* enabling
//! optimal transfer of whole page sequences, e.g. by chained I/O.
//!
//! [`SimDisk`] substitutes for that 1987 hardware/OS stack: an in-memory
//! store of fixed-size blocks per file, with
//!
//! * full I/O accounting ([`crate::IoStats`]): block reads/writes, bytes,
//!   *seeks* (non-contiguous transfers), chained-run statistics, and
//! * a [`CostModel`] translating each transfer into simulated service time
//!   (seek + rotational + per-byte transfer), so benchmarks can report a
//!   device-time axis that rewards contiguity exactly the way a disk arm
//!   does — the property the paper's clustering design banks on.

use crate::error::{StorageError, StorageResult};
use crate::stats::IoStats;
use parking_lot::{rank, Mutex, RwLock};
use std::sync::Arc;

/// Address of one block within one file of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockAddr {
    /// File number (each segment maps 1:1 onto a file).
    pub file: u32,
    /// Block number within the file.
    pub block: u32,
}

impl BlockAddr {
    pub fn new(file: u32, block: u32) -> Self {
        BlockAddr { file, block }
    }
}

/// Cost model for the simulated device.
///
/// Defaults approximate a late-1980s disk (the paper's era): 16 ms average
/// seek, 8 ms rotational delay, ~1 MB/s transfer. Absolute values do not
/// matter for the reproduction — only that contiguous multi-block transfer
/// is much cheaper than scattered single-block access, which is the ratio
/// the cost model preserves.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of moving the arm to a non-adjacent block (ns).
    pub seek_ns: u64,
    /// Average rotational latency paid once per transfer start (ns).
    pub rotation_ns: u64,
    /// Transfer cost per byte (ns).
    pub per_byte_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seek_ns: 16_000_000,
            rotation_ns: 8_000_000,
            per_byte_ns: 1_000, // 1 MB/s
        }
    }
}

impl CostModel {
    /// Service time of a transfer of `blocks` contiguous blocks of
    /// `block_len` bytes each; `seek` says whether the arm had to move.
    pub fn transfer_ns(&self, seek: bool, blocks: u64, block_len: u64) -> u64 {
        let positioning = if seek { self.seek_ns } else { 0 } + self.rotation_ns;
        positioning + blocks * block_len * self.per_byte_ns
    }
}

/// Abstract block device: what the PRIMA storage system requires of the
/// underlying file manager.
///
/// Files have a fixed block length chosen at creation (one of the five
/// supported sizes, enforced by the segment layer, not here). Blocks are
/// sparse: reading a never-written block yields zeroes, like a fresh file.
pub trait BlockDevice: Send + Sync {
    /// Creates file `file` with the given block length in bytes.
    /// Re-creating an existing file truncates it. Fallible: a real
    /// backend can hit ENOSPC / EMFILE / permissions here.
    fn create_file(&self, file: u32, block_len: usize) -> StorageResult<()>;

    /// Block length of `file`.
    fn block_len(&self, file: u32) -> StorageResult<usize>;

    /// Reads one block into `buf` (`buf.len()` must equal the block length).
    fn read_block(&self, addr: BlockAddr, buf: &mut [u8]) -> StorageResult<()>;

    /// Writes one block from `buf` (`buf.len()` must equal the block length).
    fn write_block(&self, addr: BlockAddr, buf: &[u8]) -> StorageResult<()>;

    /// Chained I/O: reads `count` blocks starting at `addr` in one run.
    /// `buf.len()` must equal `count * block_len`. This is the cluster
    /// mechanism of \[Ne87\] the paper relies on for page sequences: one
    /// positioning operation, then streaming transfer.
    fn read_chained(&self, addr: BlockAddr, count: u32, buf: &mut [u8]) -> StorageResult<()>;

    /// Chained write of `count` contiguous blocks.
    fn write_chained(&self, addr: BlockAddr, count: u32, buf: &[u8]) -> StorageResult<()>;

    /// Shared I/O statistics of this device.
    fn stats(&self) -> Arc<IoStats>;

    // -- durability hooks --------------------------------------------------
    //
    // A durable device additionally offers a metadata blob (the checkpoint
    // snapshot), an append-only log area (the WAL's backing store) and a
    // `sync` barrier. The defaults make a device *volatile*: every hook
    // errors, so a kernel configured for durability fails fast rather than
    // silently losing data. [`SimDisk`] implements them in memory (its Arc
    // plays the role of the surviving medium in crash tests); `FileDisk`
    // implements them over real files.

    /// Makes all previous writes durable (fsync-equivalent).
    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    /// Atomically replaces the device's metadata blob (checkpoint
    /// snapshot).
    fn write_meta(&self, _bytes: &[u8]) -> StorageResult<()> {
        Err(StorageError::DeviceError("device has no durable metadata area".into()))
    }

    /// Reads the metadata blob, `None` if never written.
    fn read_meta(&self) -> StorageResult<Option<Vec<u8>>> {
        Err(StorageError::DeviceError("device has no durable metadata area".into()))
    }

    /// Durably appends one already-encoded batch to the log area (called
    /// by [`crate::wal::Wal::force`] — one call per group commit).
    fn wal_append(&self, _bytes: &[u8]) -> StorageResult<()> {
        Err(StorageError::DeviceError("device has no log area".into()))
    }

    /// The entire log-area contents (recovery replay).
    fn wal_contents(&self) -> StorageResult<Vec<u8>> {
        Err(StorageError::DeviceError("device has no log area".into()))
    }

    /// Truncates the log area to empty (checkpoint).
    fn wal_reset(&self) -> StorageResult<()> {
        Err(StorageError::DeviceError("device has no log area".into()))
    }
}

/// Accounts one WAL group append as a single sequential transfer to the
/// log area: one positioning operation, then streaming bytes. Shared by
/// every backend so the benchmark axes stay comparable — N records per
/// force pay one seek, not N, which is what makes group commit visible
/// on the device-time axis.
pub(crate) fn account_wal_append(stats: &IoStats, cost: &CostModel, len: usize) {
    stats.add(&stats.seeks, 1);
    stats.add(&stats.wal_forces, 1);
    stats.add(&stats.wal_bytes, len as u64);
    stats.add(&stats.bytes_written, len as u64);
    stats.add(&stats.sim_time_ns, cost.transfer_ns(true, 1, len as u64));
}

/// File state inside the simulator.
#[derive(Debug)]
struct SimFile {
    block_len: usize,
    /// Sparse block store; `None` entries read as zeroes.
    blocks: Vec<Option<Box<[u8]>>>,
}

#[derive(Debug, Default)]
struct ArmState {
    /// Position after the last transfer, used to decide whether a new
    /// transfer needs a seek. One "arm" for the whole device is the
    /// classical single-spindle assumption of the era.
    last: Option<BlockAddr>,
}

/// In-memory simulated disk. See module docs.
///
/// Files are individually locked so concurrent readers (parallel DUs) do
/// not serialise on one global mutex — the real device property being
/// modelled is arm movement (cost model), not a software lock.
pub struct SimDisk {
    // lockrank: device.0 — file directory (outer); per-file locks nest
    // inside it.
    files: RwLock<Vec<Option<Arc<RwLock<SimFile>>>>>,
    // lockrank: device.2 — arm-position cost model; leaf.
    arm: Mutex<ArmState>,
    cost: CostModel,
    stats: Arc<IoStats>,
    /// Durable metadata blob (checkpoint snapshot) — in-memory stand-in.
    // lockrank: device.3
    meta: Mutex<Option<Vec<u8>>>,
    /// Log area: only what was explicitly appended (i.e. *forced*) lives
    /// here, so dropping a kernel without forcing models a crash exactly.
    // lockrank: device.4
    wal: Mutex<Vec<u8>>,
}

impl std::fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDisk").field("cost", &self.cost).finish_non_exhaustive()
    }
}

impl SimDisk {
    /// A device with the default 1987-style cost model.
    pub fn new() -> Self {
        Self::with_cost(CostModel::default())
    }

    /// A device with a custom cost model (used by benches to sweep the
    /// seek/transfer ratio).
    pub fn with_cost(cost: CostModel) -> Self {
        SimDisk {
            files: RwLock::new_ranked(Vec::new(), rank::DEVICE),
            arm: Mutex::new_ranked(ArmState::default(), rank::DEVICE + 2),
            cost,
            stats: IoStats::new_shared(),
            meta: Mutex::new_ranked(None, rank::DEVICE + 3),
            wal: Mutex::new_ranked(Vec::new(), rank::DEVICE + 4),
        }
    }

    fn account(&self, addr: BlockAddr, blocks: u64, block_len: usize, write: bool, chained: bool) {
        let seek = {
            let mut arm = self.arm.lock();
            let seek = match arm.last {
                Some(prev) => !(prev.file == addr.file && prev.block + 1 == addr.block),
                None => true,
            };
            arm.last = Some(BlockAddr::new(addr.file, addr.block + blocks as u32 - 1));
            seek
        };
        let s = &self.stats;
        if seek {
            s.add(&s.seeks, 1);
        }
        let bytes = blocks * block_len as u64;
        if write {
            s.add(&s.block_writes, blocks);
            s.add(&s.bytes_written, bytes);
        } else {
            s.add(&s.block_reads, blocks);
            s.add(&s.bytes_read, bytes);
        }
        if chained {
            s.add(&s.chained_runs, 1);
            s.add(&s.chained_blocks, blocks);
        }
        s.add(&s.sim_time_ns, self.cost.transfer_ns(seek, blocks, block_len as u64));
    }

    fn file(&self, file: u32) -> StorageResult<Arc<RwLock<SimFile>>> {
        self.files
            .read()
            .get(file as usize)
            .and_then(std::clone::Clone::clone)
            .ok_or(StorageError::UnknownSegment(file))
    }

    fn with_file<R>(
        &self,
        file: u32,
        f: impl FnOnce(&mut SimFile) -> StorageResult<R>,
    ) -> StorageResult<R> {
        let handle = self.file(file)?;
        let mut guard = handle.write();
        f(&mut guard)
    }

    fn with_file_read<R>(
        &self,
        file: u32,
        f: impl FnOnce(&SimFile) -> StorageResult<R>,
    ) -> StorageResult<R> {
        let handle = self.file(file)?;
        let guard = handle.read();
        f(&guard)
    }
}

impl Default for SimDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockDevice for SimDisk {
    fn create_file(&self, file: u32, block_len: usize) -> StorageResult<()> {
        let mut files = self.files.write();
        if files.len() <= file as usize {
            files.resize_with(file as usize + 1, || None);
        }
        // lockrank: device.1 — per-file content lock, inside the directory.
        files[file as usize] =
            Some(Arc::new(RwLock::new_ranked(SimFile { block_len, blocks: Vec::new() }, rank::DEVICE + 1)));
        Ok(())
    }

    fn block_len(&self, file: u32) -> StorageResult<usize> {
        self.with_file_read(file, |f| Ok(f.block_len))
    }

    fn read_block(&self, addr: BlockAddr, buf: &mut [u8]) -> StorageResult<()> {
        self.with_file_read(addr.file, |f| {
            debug_assert_eq!(buf.len(), f.block_len, "buffer must match block length");
            match f.blocks.get(addr.block as usize).and_then(|b| b.as_deref()) {
                Some(data) => buf.copy_from_slice(data),
                None => buf.fill(0),
            }
            Ok(())
        })?;
        self.account(addr, 1, buf.len(), false, false);
        Ok(())
    }

    fn write_block(&self, addr: BlockAddr, buf: &[u8]) -> StorageResult<()> {
        self.with_file(addr.file, |f| {
            debug_assert_eq!(buf.len(), f.block_len, "buffer must match block length");
            let idx = addr.block as usize;
            if f.blocks.len() <= idx {
                f.blocks.resize_with(idx + 1, || None);
            }
            f.blocks[idx] = Some(buf.to_vec().into_boxed_slice());
            Ok(())
        })?;
        self.account(addr, 1, buf.len(), true, false);
        Ok(())
    }

    fn read_chained(&self, addr: BlockAddr, count: u32, buf: &mut [u8]) -> StorageResult<()> {
        let block_len = self.with_file_read(addr.file, |f| {
            debug_assert_eq!(buf.len(), count as usize * f.block_len);
            for i in 0..count {
                let idx = (addr.block + i) as usize;
                let dst = &mut buf[i as usize * f.block_len..(i as usize + 1) * f.block_len];
                match f.blocks.get(idx).and_then(|b| b.as_deref()) {
                    Some(data) => dst.copy_from_slice(data),
                    None => dst.fill(0),
                }
            }
            Ok(f.block_len)
        })?;
        self.account(addr, count as u64, block_len, false, true);
        Ok(())
    }

    fn write_chained(&self, addr: BlockAddr, count: u32, buf: &[u8]) -> StorageResult<()> {
        let block_len = self.with_file(addr.file, |f| {
            debug_assert_eq!(buf.len(), count as usize * f.block_len);
            let end = (addr.block + count) as usize;
            if f.blocks.len() < end {
                f.blocks.resize_with(end, || None);
            }
            for i in 0..count as usize {
                let src = &buf[i * f.block_len..(i + 1) * f.block_len];
                f.blocks[addr.block as usize + i] = Some(src.to_vec().into_boxed_slice());
            }
            Ok(f.block_len)
        })?;
        self.account(addr, count as u64, block_len, true, true);
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }

    fn write_meta(&self, bytes: &[u8]) -> StorageResult<()> {
        *self.meta.lock() = Some(bytes.to_vec());
        Ok(())
    }

    fn read_meta(&self) -> StorageResult<Option<Vec<u8>>> {
        Ok(self.meta.lock().clone())
    }

    fn wal_append(&self, bytes: &[u8]) -> StorageResult<()> {
        self.wal.lock().extend_from_slice(bytes);
        account_wal_append(&self.stats, &self.cost, bytes.len());
        // The arm moved to the log area: the next data transfer seeks.
        self.arm.lock().last = None;
        Ok(())
    }

    fn wal_contents(&self) -> StorageResult<Vec<u8>> {
        Ok(self.wal.lock().clone())
    }

    fn wal_reset(&self) -> StorageResult<()> {
        self.wal.lock().clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let d = SimDisk::new();
        d.create_file(0, 512).unwrap();
        let data = vec![0xabu8; 512];
        d.write_block(BlockAddr::new(0, 3), &data).unwrap();
        let mut out = vec![0u8; 512];
        d.read_block(BlockAddr::new(0, 3), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = SimDisk::new();
        d.create_file(1, 1024).unwrap();
        let mut out = vec![0xffu8; 1024];
        d.read_block(BlockAddr::new(1, 100), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn unknown_file_errors() {
        let d = SimDisk::new();
        let mut out = vec![0u8; 512];
        assert!(matches!(
            d.read_block(BlockAddr::new(9, 0), &mut out),
            Err(StorageError::UnknownSegment(9))
        ));
    }

    #[test]
    fn chained_io_round_trips_and_counts_one_run() {
        let d = SimDisk::new();
        d.create_file(0, 512).unwrap();
        let mut data = vec![0u8; 4 * 512];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        d.write_chained(BlockAddr::new(0, 10), 4, &data).unwrap();
        let mut out = vec![0u8; 4 * 512];
        d.read_chained(BlockAddr::new(0, 10), 4, &mut out).unwrap();
        assert_eq!(out, data);
        let s = d.stats().snapshot();
        assert_eq!(s.chained_runs, 2);
        assert_eq!(s.chained_blocks, 8);
        assert_eq!(s.block_reads, 4);
        assert_eq!(s.block_writes, 4);
    }

    #[test]
    fn sequential_access_avoids_seeks() {
        let d = SimDisk::new();
        d.create_file(0, 512).unwrap();
        let buf = vec![0u8; 512];
        for b in 0..10 {
            d.write_block(BlockAddr::new(0, b), &buf).unwrap();
        }
        // first transfer seeks, the other nine are contiguous
        assert_eq!(d.stats().snapshot().seeks, 1);
        let mut r = vec![0u8; 512];
        // jump back to block 0: one more seek, then sequential
        for b in 0..10 {
            d.read_block(BlockAddr::new(0, b), &mut r).unwrap();
        }
        assert_eq!(d.stats().snapshot().seeks, 2);
    }

    #[test]
    fn scattered_access_pays_seeks() {
        let d = SimDisk::new();
        d.create_file(0, 512).unwrap();
        let mut r = vec![0u8; 512];
        for b in [5u32, 50, 7, 99, 2] {
            d.read_block(BlockAddr::new(0, b), &mut r).unwrap();
        }
        assert_eq!(d.stats().snapshot().seeks, 5);
    }

    #[test]
    fn cost_model_rewards_contiguity() {
        let m = CostModel::default();
        let chained = m.transfer_ns(true, 8, 1024);
        let scattered: u64 = (0..8).map(|_| m.transfer_ns(true, 1, 1024)).sum();
        assert!(chained < scattered / 3, "chained {chained} vs scattered {scattered}");
    }

    #[test]
    fn recreate_truncates() {
        let d = SimDisk::new();
        d.create_file(0, 512).unwrap();
        d.write_block(BlockAddr::new(0, 0), &[1u8; 512]).unwrap();
        d.create_file(0, 512).unwrap();
        let mut out = [0xffu8; 512];
        d.read_block(BlockAddr::new(0, 0), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }
}
