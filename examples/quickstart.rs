//! Quickstart: the paper's running example through the session API.
//!
//! Loads the verbatim Fig. 2.3 schema, populates a small solid-modeling
//! database, then exercises the three kernel objects applications use:
//! `Session` (transactional conversation), `Prepared` (parse/plan once,
//! bind + execute many) and `MoleculeCursor` (piecewise molecule
//! delivery), running the four queries of Table 2.1 along the way.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use prima::{PrimaResult, QueryOptions, Value};
use prima_workloads::brep::{self, BrepConfig};

fn main() -> PrimaResult<()> {
    // 1. Open a kernel with the Fig. 2.3 schema (MAD-DDL, verbatim).
    let db = brep::open_db(8 << 20)?;
    println!("schema loaded: {} atom types", db.schema().atom_types().len());

    // 2. Populate: base solids with boundary representations plus a
    //    two-level assembly hierarchy.
    let stats = brep::populate(&db, &BrepConfig::with_assembly(4, 2, 2))?;
    println!(
        "populated: {} solids, {} faces, {} edges, {} points",
        stats.solid_ids.len(),
        stats.faces,
        stats.edges,
        stats.points
    );

    // 3. A session is the application's conversation with the kernel.
    let session = db.session();

    // 4. Table 2.1a — vertical access, as a *prepared* statement: the
    //    MQL is parsed and planned once; each execution only binds the
    //    brep number. (The trace proves the key lookup survives binding.)
    let mut by_brep = session.prepare(
        "SELECT ALL
         FROM brep-face-edge-point
         WHERE brep_no = ? (* qualification *)",
    )?;
    for n in 1..=2i64 {
        by_brep.bind(&[Value::Int(n)])?;
        let r = by_brep.query(&QueryOptions::new().traced())?;
        println!(
            "\nTable 2.1a (brep {n}): {} molecule(s) via {:?}",
            r.set.len(),
            r.trace.expect("traced").root_access
        );
        println!(
            "  faces: {}, edge occurrences: {}, point occurrences: {}",
            r.set.atoms_of("face").len(),
            r.set.atoms_of("edge").len(),
            r.set.atoms_of("point").len()
        );
    }
    let stats_now = db.api_stats().snapshot();
    println!(
        "  (api stats: {} parse(s), {} plan(s), {} plan reuse(s))",
        stats_now.statements_parsed, stats_now.plans_built, stats_now.plan_reuses
    );

    // 5. Table 2.1b — recursive molecule with a seed qualification.
    let root = stats.root_solid_nos[0];
    let mut pieces = session.prepare(
        "SELECT ALL
         FROM piece_list (* pre-defined molecule type *)
         WHERE piece_list (0).solid_no = :root (* seed qualification *)",
    )?;
    pieces.bind_named(&[("root", Value::Int(root))])?;
    let set = pieces.query(&QueryOptions::default())?.set;
    println!("\nTable 2.1b (recursive piece list of solid {root}):");
    println!("  {} atoms, {} levels deep", set.molecules[0].atom_count(), set.molecules[0].depth());

    // 6. Table 2.1c — horizontal access with unqualified projection.
    let set = session
        .query(
            "SELECT solid_no, description (* unqualified projection *)
             FROM solid
             WHERE sub = EMPTY",
            &QueryOptions::default(),
        )?
        .set;
    println!("\nTable 2.1c (primitive solids): {} found", set.len());
    for m in set.molecules.iter().take(3) {
        println!("  {} {}", m.root.atom.values[1], m.root.atom.values[2]);
    }

    // 7. Table 2.1d — tree molecule, quantifier, qualified projection.
    let set = session
        .query(
            "SELECT edge, (point, (* unqualified projection p1 *)
                    face := SELECT face_id, square_dim
                    FROM face (* qualified projection q3, p2 *)
                    WHERE square_dim > 10.0)
             FROM brep-edge (face, point)
             WHERE brep_no = 1 (* qualification q1 *)
             AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0
             (* quantified restriction q2 *)",
            &QueryOptions::default(),
        )?
        .set;
    println!("\nTable 2.1d (misc query): {} molecule(s)", set.len());
    if let Some(m) = set.molecules.first() {
        println!(
            "  edges: {}, faces surviving qualified projection: {}",
            set.atoms_of("edge").len(),
            m.atoms_of_node(set.node_id("face").expect("face node")).len()
        );
    }

    // 8. Piecewise delivery: a cursor assembles molecules lazily, chunk
    //    by chunk — large results never materialise in full.
    let mut cursor =
        session.query_cursor("SELECT ALL FROM brep-face", &QueryOptions::default())?;
    println!("\nstreaming brep-face molecules ({} roots):", cursor.remaining_roots());
    let mut delivered = 0usize;
    loop {
        let chunk = cursor.fetch(2)?;
        if chunk.is_empty() {
            break;
        }
        delivered += chunk.len();
    }
    println!("  delivered {delivered} molecules in chunks of 2");

    // 9. MQL manipulation under the session's transaction: explicit
    //    commit — and rollback undoing everything since the last one.
    session.execute("INSERT solid (solid_no: 999, description: 'adhoc part')")?;
    session.commit()?;
    session.execute("MODIFY solid SET description = 'renamed part' WHERE solid_no = 999")?;
    session.execute("DELETE FROM solid WHERE solid_no = 999")?;
    session.rollback()?; // the modify and delete never happened
    let found = session
        .query("SELECT ALL FROM solid WHERE solid_no = 999", &QueryOptions::default())?
        .set;
    println!(
        "\ninserted solid 999 (committed), then rolled a modify+delete back: {} molecule(s), {}",
        found.len(),
        found.molecules[0].root.atom.values[2]
    );
    session.execute("DELETE FROM solid WHERE solid_no = 999")?;
    session.commit()?;
    println!("deleted it for good");

    Ok(())
}
