//! Undo log entries for selective in-transaction recovery — and, since
//! the durability subsystem, for *restart* recovery.
//!
//! "…a flexible transaction concept … which should also focus on fine
//! grained intra-transaction parallelism and selective in-transaction
//! recovery in various failure events" (Section 4). Undo is *logical*:
//! each entry stores the inverse operation; back-references regenerate
//! through the access system's own integrity maintenance when the inverse
//! is applied, so sibling subtransactions' work is untouched.
//!
//! Each entry also has a byte encoding ([`UndoOp::encode`] /
//! [`UndoOp::decode`]) so the transaction manager can append it to the
//! write-ahead log *before* the operation touches any page: after a
//! crash, `Prima::open` replays the undo records of loser transactions in
//! reverse log order through [`UndoOp::apply_recovery`], which tolerates
//! the partial states redo can leave behind (an op whose page images
//! never reached the forced log prefix has nothing to undo).

use prima_access::{AccessError, AccessSystem, Atom};
use prima_mad::codec::{self, CodecError};
use prima_storage::bytes::{le_u32, le_u64};
use prima_mad::value::{AtomId, Value};

/// One logical undo entry.
#[derive(Debug, Clone)]
pub enum UndoOp {
    /// Inverse of insert: delete the atom.
    UndoInsert { id: AtomId },
    /// Inverse of modify: restore the old attribute values.
    UndoModify { id: AtomId, old: Vec<(usize, Value)> },
    /// Inverse of delete: restore the atom with its old values (and
    /// thereby its outgoing references; back-references follow).
    UndoDelete { atom: Atom },
}

const KIND_INSERT: u8 = 1;
const KIND_MODIFY: u8 = 2;
const KIND_DELETE: u8 = 3;

impl UndoOp {
    /// The atom this entry concerns — recovery feeds every id it sees in
    /// the WAL tail back into the surrogate counters.
    pub fn atom_id(&self) -> AtomId {
        match self {
            UndoOp::UndoInsert { id } | UndoOp::UndoModify { id, .. } => *id,
            UndoOp::UndoDelete { atom } => atom.id,
        }
    }

    /// Applies the inverse operation.
    pub fn apply(&self, sys: &AccessSystem) -> Result<(), AccessError> {
        match self {
            UndoOp::UndoInsert { id } => {
                if sys.exists(*id) {
                    sys.delete_atom(*id)?;
                }
                Ok(())
            }
            UndoOp::UndoModify { id, old } => {
                if sys.exists(*id) {
                    sys.modify_atom(*id, old)?;
                }
                Ok(())
            }
            UndoOp::UndoDelete { atom } => {
                // Drop references to atoms that no longer exist (they may
                // have been deleted by the same aborting transaction and
                // restored later in the reverse replay — in that case the
                // later restore re-adds the back-reference symmetrically).
                let mut values = atom.values.clone();
                for v in &mut values {
                    match v {
                        Value::Ref(Some(t)) if !sys.exists(*t) => *v = Value::Ref(None),
                        Value::RefSet(ids) => ids.retain(|t| sys.exists(*t)),
                        _ => {}
                    }
                }
                sys.restore_atom(Atom::new(atom.id, values))?;
                Ok(())
            }
        }
    }

    /// Restart-recovery variant of [`UndoOp::apply`]: dangling references
    /// in restored values are dropped (the atoms they named may never
    /// have reached the forced log), and "already in the target state"
    /// outcomes are successes — replaying the undo of a half-redone or
    /// half-aborted transaction must be idempotent.
    pub fn apply_recovery(&self, sys: &AccessSystem) -> Result<(), AccessError> {
        let result = match self {
            UndoOp::UndoModify { id, old } => {
                if !sys.exists(*id) {
                    return Ok(());
                }
                let mut old = old.clone();
                for (_, v) in &mut old {
                    match v {
                        Value::Ref(Some(t)) if !sys.exists(*t) => *v = Value::Ref(None),
                        Value::RefSet(ids) => ids.retain(|t| sys.exists(*t)),
                        _ => {}
                    }
                }
                sys.modify_atom(*id, &old)
            }
            other => other.apply(sys),
        };
        match result {
            Err(AccessError::AtomAlreadyExists(_)) | Err(AccessError::NoSuchAtom(_)) => Ok(()),
            other => other,
        }
    }

    /// Byte encoding for the write-ahead log.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put_id = |out: &mut Vec<u8>, id: AtomId| {
            out.extend_from_slice(&id.atom_type.to_le_bytes());
            out.extend_from_slice(&id.seq.to_le_bytes());
        };
        match self {
            UndoOp::UndoInsert { id } => {
                out.push(KIND_INSERT);
                put_id(&mut out, *id);
            }
            UndoOp::UndoModify { id, old } => {
                out.push(KIND_MODIFY);
                put_id(&mut out, *id);
                out.extend_from_slice(&(old.len() as u32).to_le_bytes());
                for (idx, v) in old {
                    out.extend_from_slice(&(*idx as u32).to_le_bytes());
                    codec::encode_value(v, &mut out);
                }
            }
            UndoOp::UndoDelete { atom } => {
                out.push(KIND_DELETE);
                out.extend_from_slice(&atom.encode());
            }
        }
        out
    }

    /// Decodes a WAL undo payload.
    pub fn decode(buf: &[u8]) -> Result<UndoOp, AccessError> {
        let trunc = || AccessError::Codec(CodecError::Truncated);
        let get_id = |buf: &[u8]| -> Result<AtomId, AccessError> {
            if buf.len() < 10 {
                return Err(trunc());
            }
            Ok(AtomId::new(
                u16::from_le_bytes([buf[0], buf[1]]),
                le_u64(&buf[2..10]),
            ))
        };
        match buf.first() {
            Some(&KIND_INSERT) => Ok(UndoOp::UndoInsert { id: get_id(&buf[1..])? }),
            Some(&KIND_MODIFY) => {
                let id = get_id(&buf[1..])?;
                let rest = &buf[11..];
                if rest.len() < 4 {
                    return Err(trunc());
                }
                let n = le_u32(&rest[0..4]) as usize;
                let mut pos = 4usize;
                let mut old = Vec::with_capacity(n);
                for _ in 0..n {
                    if rest.len() < pos + 4 {
                        return Err(trunc());
                    }
                    let idx =
                        le_u32(&rest[pos..pos + 4]) as usize;
                    pos += 4;
                    let v = codec::decode_value(rest, &mut pos).map_err(AccessError::Codec)?;
                    old.push((idx, v));
                }
                Ok(UndoOp::UndoModify { id, old })
            }
            Some(&KIND_DELETE) => Ok(UndoOp::UndoDelete { atom: Atom::decode(&buf[1..])? }),
            _ => Err(trunc()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undo_ops_round_trip_through_bytes() {
        let id = AtomId::new(3, 17);
        let ops = [
            UndoOp::UndoInsert { id },
            UndoOp::UndoModify {
                id,
                old: vec![
                    (1, Value::Int(42)),
                    (2, Value::Str("before".into())),
                    (3, Value::ref_set(vec![AtomId::new(4, 9)])),
                ],
            },
            UndoOp::UndoDelete {
                atom: Atom::new(id, vec![Value::Id(id), Value::Int(7), Value::Null]),
            },
        ];
        for op in &ops {
            let bytes = op.encode();
            let back = UndoOp::decode(&bytes).unwrap();
            assert_eq!(format!("{op:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn truncated_payload_rejected() {
        assert!(UndoOp::decode(&[]).is_err());
        assert!(UndoOp::decode(&[KIND_MODIFY, 1]).is_err());
    }
}
