//! The access-system facade: the atom-oriented interface of PRIMA.
//!
//! Everything Section 3.2 assigns to the access system meets here:
//! surrogate generation, direct access by logical address, automatic
//! back-reference maintenance, `KEYS_ARE` uniqueness, tuning structures
//! (partitions, sort orders, B*-trees, grid files, atom clusters) with
//! immediate or deferred maintenance of the redundant records, and the
//! cost-based choice among redundant copies on read.

use crate::addressing::AddressTable;
pub use crate::addressing::StructureId;
use crate::atom::Atom;
use crate::btree::BTree;
use crate::cluster::AtomClusterType;
use crate::deferred::{DeferredQueue, PendingOp};
use crate::error::{AccessError, AccessResult};
use crate::integrity::{apply_backref, backref_ops, BackRefOp};
use crate::multidim::GridFile;
use crate::partition::Partition;
use crate::record_file::RecordFile;
use crate::sort_order::SortOrder;
use parking_lot::{rank, RwLock};
use prima_mad::codec::encode_composite_key;
use prima_mad::schema::Schema;
use prima_mad::value::{AtomId, AtomTypeId, Value};
use prima_mad::AttrType;
use prima_storage::{PageSize, StorageSystem};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When redundant copies (partitions, sort orders, clusters) are brought
/// up to date after a modification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePolicy {
    /// All copies synchronously — the baseline the paper argues against.
    Immediate,
    /// "During an update operation only one physical record is modified
    /// whereas all others are modified later" (Section 3.2).
    Deferred,
}

/// Counters exposed for the experiments.
#[derive(Debug, Default)]
pub struct AccessStats {
    /// Physical records written synchronously by user operations.
    pub records_written: AtomicU64,
    /// Implicit back-reference updates performed (system-enforced
    /// integrity).
    pub backref_updates: AtomicU64,
    /// Reads satisfied from a partition instead of the primary record.
    pub partition_reads: AtomicU64,
    /// Reads satisfied from the primary record.
    pub primary_reads: AtomicU64,
    /// Page-grouped batched reads executed (the non-degenerate
    /// `read_atoms_batch` path).
    pub batch_reads: AtomicU64,
    /// Distinct data pages fixed across all batched reads.
    pub batch_pages: AtomicU64,
    /// Atoms requested across all batched reads.
    pub batch_atoms: AtomicU64,
}

impl AccessStats {
    pub fn reset(&self) {
        self.records_written.store(0, Ordering::Relaxed);
        self.backref_updates.store(0, Ordering::Relaxed);
        self.partition_reads.store(0, Ordering::Relaxed);
        self.primary_reads.store(0, Ordering::Relaxed);
        self.batch_reads.store(0, Ordering::Relaxed);
        self.batch_pages.store(0, Ordering::Relaxed);
        self.batch_atoms.store(0, Ordering::Relaxed);
    }

    /// An owned point-in-time copy, convenient for diffing around an
    /// operation under measurement.
    pub fn snapshot(&self) -> AccessStatsSnapshot {
        AccessStatsSnapshot {
            records_written: self.records_written.load(Ordering::Relaxed),
            backref_updates: self.backref_updates.load(Ordering::Relaxed),
            partition_reads: self.partition_reads.load(Ordering::Relaxed),
            primary_reads: self.primary_reads.load(Ordering::Relaxed),
            batch_reads: self.batch_reads.load(Ordering::Relaxed),
            batch_pages: self.batch_pages.load(Ordering::Relaxed),
            batch_atoms: self.batch_atoms.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of [`AccessStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStatsSnapshot {
    pub records_written: u64,
    pub backref_updates: u64,
    pub partition_reads: u64,
    pub primary_reads: u64,
    pub batch_reads: u64,
    pub batch_pages: u64,
    pub batch_atoms: u64,
}

impl AccessStatsSnapshot {
    /// Component-wise difference `self - earlier`; saturates at zero.
    pub fn since(&self, earlier: &AccessStatsSnapshot) -> AccessStatsSnapshot {
        AccessStatsSnapshot {
            records_written: self.records_written.saturating_sub(earlier.records_written),
            backref_updates: self.backref_updates.saturating_sub(earlier.backref_updates),
            partition_reads: self.partition_reads.saturating_sub(earlier.partition_reads),
            primary_reads: self.primary_reads.saturating_sub(earlier.primary_reads),
            batch_reads: self.batch_reads.saturating_sub(earlier.batch_reads),
            batch_pages: self.batch_pages.saturating_sub(earlier.batch_pages),
            batch_atoms: self.batch_atoms.saturating_sub(earlier.batch_atoms),
        }
    }
}

impl prima_storage::StatsSnapshot for AccessStatsSnapshot {
    const FAMILY: &'static str = "access";

    fn delta(&self, earlier: &Self) -> Self {
        self.since(earlier)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("records_written", self.records_written),
            ("backref_updates", self.backref_updates),
            ("partition_reads", self.partition_reads),
            ("primary_reads", self.primary_reads),
            ("batch_reads", self.batch_reads),
            ("batch_pages", self.batch_pages),
            ("batch_atoms", self.batch_atoms),
        ]
    }
}

/// Uniqueness map of one `KEYS_ARE` attribute: encoded key -> atom.
type KeyMap = RwLock<HashMap<Vec<u8>, AtomId>>;

/// Primary-read requests of one batch that share a data page:
/// `((atom type, page), [(position in the batch, slot)])`.
type PageGroup = ((AtomTypeId, u32), Vec<(usize, u16)>);

/// Per-atom-type base storage.
struct TypeStore {
    file: RecordFile,
    next_seq: AtomicU64,
    /// One uniqueness map per `KEYS_ARE` attribute:
    /// encoded key value -> atom.
    // lockrank: buffer.1 — updated from inside `for_each` page-guard
    // callbacks at restart rescan, like the address table.
    key_maps: Vec<(usize, KeyMap)>,
    /// Live atom ids in insertion order (system-defined order of the
    /// atom-type scan is physical order; this is kept for statistics).
    count: AtomicU64,
}

/// A B*-tree access path over one attribute combination.
pub struct BTreeIndex {
    pub id: StructureId,
    pub name: String,
    pub atom_type: AtomTypeId,
    pub key_attrs: Vec<usize>,
    pub tree: BTree,
}

impl BTreeIndex {
    /// Composite key of an atom under this index.
    pub fn key_of(&self, values: &[Value]) -> Vec<u8> {
        let vals: Vec<Value> = self
            .key_attrs
            .iter()
            .map(|&i| values.get(i).cloned().unwrap_or(Value::Null))
            .collect();
        encode_composite_key(&vals)
    }
}

/// A grid-file access path over several attributes.
pub struct GridIndex {
    pub id: StructureId,
    pub name: String,
    pub atom_type: AtomTypeId,
    pub key_attrs: Vec<usize>,
    // lockrank: access.3 — write-held across grid-page splits (which fix
    // buffer pages: access < buffer).
    pub grid: RwLock<GridFile>,
}

impl GridIndex {
    /// Per-dimension keys of an atom under this index.
    pub fn keys_of(&self, values: &[Value]) -> Vec<Vec<u8>> {
        self.key_attrs
            .iter()
            .map(|&i| {
                let mut k = Vec::new();
                prima_mad::codec::encode_key(
                    values.get(i).unwrap_or(&Value::Null),
                    &mut k,
                );
                k
            })
            .collect()
    }
}

#[derive(Default)]
struct Structures {
    next_id: StructureId,
    by_name: HashMap<String, StructureId>,
    partitions: HashMap<StructureId, Arc<Partition>>,
    sort_orders: HashMap<StructureId, Arc<SortOrder>>,
    btrees: HashMap<StructureId, Arc<BTreeIndex>>,
    grids: HashMap<StructureId, Arc<GridIndex>>,
    clusters: HashMap<StructureId, Arc<AtomClusterType>>,
}

/// The access system over one storage system and one schema.
pub struct AccessSystem {
    storage: Arc<StorageSystem>,
    schema: Schema,
    stores: Vec<TypeStore>,
    addresses: AddressTable,
    // lockrank: access.0 — tuning-structure directory; read-held while
    // descending into a tree/grid/sort order.
    structures: RwLock<Structures>,
    /// member atom -> clusters containing it: (cluster structure,
    /// characteristic atom).
    // lockrank: access.1 — registry peers (membership, policy, key maps):
    // transient holds that never nest with one another.
    cluster_membership: RwLock<HashMap<AtomId, Vec<(StructureId, AtomId)>>>,
    deferred: DeferredQueue,
    // lockrank: access.1 — registry peer; transient holds.
    policy: RwLock<UpdatePolicy>,
    stats: AccessStats,
}

impl AccessSystem {
    /// Builds an access system for a validated schema. One base record
    /// file (4K pages) per atom type.
    pub fn new(storage: Arc<StorageSystem>, schema: Schema) -> AccessResult<AccessSystem> {
        schema.validate()?;
        let stores = schema
            .atom_types()
            .iter()
            .map(|at| {
                Ok(TypeStore {
                    file: RecordFile::create(Arc::clone(&storage), PageSize::K4)?,
                    next_seq: AtomicU64::new(1),
                    key_maps: at
                        .keys
                        .iter()
                        .filter_map(|k| at.attribute_index(k))
                        .map(|i| (i, RwLock::new_ranked(HashMap::new(), rank::BUFFER + 1)))
                        .collect(),
                    count: AtomicU64::new(0),
                })
            })
            .collect::<AccessResult<Vec<_>>>()?;
        Ok(AccessSystem {
            storage,
            schema,
            stores,
            addresses: AddressTable::new(),
            structures: RwLock::new_ranked(Structures::default(), rank::ACCESS),
            cluster_membership: RwLock::new_ranked(HashMap::new(), rank::ACCESS + 1),
            deferred: DeferredQueue::new(),
            policy: RwLock::new_ranked(UpdatePolicy::Deferred, rank::ACCESS + 1),
            stats: AccessStats::default(),
        })
    }

    /// The base-record-file segment of every atom type, in type order —
    /// the access-layer half of the checkpoint's catalog snapshot.
    pub fn type_segments(&self) -> Vec<prima_storage::SegmentId> {
        self.stores.iter().map(|s| s.file.segment()).collect()
    }

    /// The surrogate counter of every atom type, in type order. Snapshot
    /// alongside [`AccessSystem::type_segments`]: surrogates are never
    /// reused, and a rescan alone cannot see the ids of atoms deleted
    /// before the crash.
    pub fn type_next_seqs(&self) -> Vec<u64> {
        self.stores.iter().map(|s| s.next_seq.load(Ordering::Relaxed)).collect()
    }

    /// Ensures the surrogate counter of `t` stays beyond `seq` — restart
    /// recovery feeds it every atom id found in the WAL tail (insert /
    /// modify / delete undo records), covering atoms allocated after the
    /// snapshot even when they no longer exist to be rescanned.
    pub fn note_allocated_seq(&self, t: AtomTypeId, seq: u64) -> AccessResult<()> {
        self.store_of(t)?.next_seq.fetch_max(seq + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Re-attaches an access system to existing storage after restart:
    /// each atom type's record file is re-attached to its snapshotted
    /// segment (`type_segments`, in type order), then scanned once to
    /// rebuild everything the access layer keeps in memory — the address
    /// table, `KEYS_ARE` uniqueness maps and live-atom counts. Surrogate
    /// counters resume from the *snapshot* (`type_next_seq`, same order;
    /// missing entries fall back to the scan) rather than the scan
    /// alone, so ids of atoms deleted before the crash are not handed
    /// out again; the caller additionally feeds WAL-tail allocations via
    /// [`AccessSystem::note_allocated_seq`]. Tuning structures are *not*
    /// recovered: they are redundant by definition and are re-created by
    /// re-running LDL.
    pub fn reopen(
        storage: Arc<StorageSystem>,
        schema: Schema,
        type_segments: &[prima_storage::SegmentId],
        type_next_seq: &[u64],
    ) -> AccessResult<AccessSystem> {
        schema.validate()?;
        let atom_types = schema.atom_types();
        if type_segments.len() != atom_types.len() {
            return Err(AccessError::RecoveryMismatch(format!(
                "snapshot has {} type segments but the schema declares {} atom types",
                type_segments.len(),
                atom_types.len()
            )));
        }
        let mut stores = Vec::with_capacity(atom_types.len());
        for (at, &segment) in atom_types.iter().zip(type_segments) {
            let file = RecordFile::attach(Arc::clone(&storage), segment)?;
            stores.push(TypeStore {
                file,
                next_seq: AtomicU64::new(1),
                key_maps: at
                    .keys
                    .iter()
                    .filter_map(|k| at.attribute_index(k))
                    .map(|i| (i, RwLock::new_ranked(HashMap::new(), rank::BUFFER + 1)))
                    .collect(),
                count: AtomicU64::new(0),
            });
        }
        let sys = AccessSystem {
            storage,
            schema,
            stores,
            addresses: AddressTable::new(),
            structures: RwLock::new_ranked(Structures::default(), rank::ACCESS),
            cluster_membership: RwLock::new_ranked(HashMap::new(), rank::ACCESS + 1),
            deferred: DeferredQueue::new(),
            policy: RwLock::new_ranked(UpdatePolicy::Deferred, rank::ACCESS + 1),
            stats: AccessStats::default(),
        };
        for (i, store) in sys.stores.iter().enumerate() {
            let mut max_seq = 0u64;
            let mut live = 0u64;
            store.file.for_each(|ptr, bytes| {
                let atom = Atom::decode(bytes)?;
                sys.addresses.set_primary(atom.id, ptr);
                max_seq = max_seq.max(atom.id.seq);
                live += 1;
                for (attr, map) in &store.key_maps {
                    let v = &atom.values[*attr];
                    if !matches!(v, Value::Null) {
                        map.write()
                            .insert(encode_composite_key(std::slice::from_ref(v)), atom.id);
                    }
                }
                Ok(())
            })?;
            let snapshot_seq = type_next_seq.get(i).copied().unwrap_or(1);
            store.next_seq.store((max_seq + 1).max(snapshot_seq), Ordering::Relaxed);
            store.count.store(live, Ordering::Relaxed);
        }
        Ok(sys)
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn storage(&self) -> &Arc<StorageSystem> {
        &self.storage
    }

    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    pub fn deferred_queue(&self) -> &DeferredQueue {
        &self.deferred
    }

    /// Sets the maintenance policy for redundant copies.
    pub fn set_update_policy(&self, p: UpdatePolicy) {
        *self.policy.write() = p;
    }

    pub fn update_policy(&self) -> UpdatePolicy {
        *self.policy.read()
    }

    fn store_of(&self, t: AtomTypeId) -> AccessResult<&TypeStore> {
        self.stores.get(t as usize).ok_or(AccessError::NoSuchAtomType(t))
    }

    /// Number of live atoms of a type.
    pub fn atom_count(&self, t: AtomTypeId) -> AccessResult<u64> {
        Ok(self.store_of(t)?.count.load(Ordering::Relaxed))
    }

    /// Base record file of a type (used by the atom-type scan).
    pub(crate) fn base_file(&self, t: AtomTypeId) -> AccessResult<&RecordFile> {
        Ok(&self.store_of(t)?.file)
    }

    // -----------------------------------------------------------------
    // Insert
    // -----------------------------------------------------------------

    /// Inserts an atom with positional values. The IDENTIFIER slot may be
    /// `Null`; the generated surrogate is placed there. Values may be
    /// shorter than the declared arity — missing attributes are unset
    /// ("values are assigned to all or only selected attributes").
    pub fn insert_atom(&self, t: AtomTypeId, values: Vec<Value>) -> AccessResult<AtomId> {
        self.insert_atom_with_hook(t, values, |_| Ok(()))
    }

    /// [`AccessSystem::insert_atom`] with a *pre-write hook*: `hook` runs
    /// after the surrogate is generated and the values validated, but
    /// **before any page is modified**. The transaction layer uses it to
    /// append the insert's undo record to the WAL ahead of the page
    /// images it causes — the forced log prefix then never contains a
    /// redo without its matching undo.
    pub fn insert_atom_with_hook(
        &self,
        t: AtomTypeId,
        mut values: Vec<Value>,
        hook: impl FnOnce(AtomId) -> AccessResult<()>,
    ) -> AccessResult<AtomId> {
        let at = self.schema.atom_type(t).ok_or(AccessError::NoSuchAtomType(t))?.clone();
        // Pad with type-appropriate null values.
        while values.len() < at.attributes.len() {
            values.push(at.attributes[values.len()].ty.null_value());
        }
        // Generate the surrogate.
        let store = self.store_of(t)?;
        let seq = store.next_seq.fetch_add(1, Ordering::Relaxed);
        let id = AtomId::new(t, seq);
        let id_idx = at.identifier_index();
        values[id_idx] = Value::Id(id);
        self.schema.check_atom_values(t, &values)?;
        self.check_references(&at, id, &values)?;
        hook(id)?;
        // Key uniqueness.
        for (attr, map) in &store.key_maps {
            let v = &values[*attr];
            if matches!(v, Value::Null) {
                continue;
            }
            let key = encode_composite_key(std::slice::from_ref(v));
            let mut m = map.write();
            if m.contains_key(&key) {
                return Err(AccessError::DuplicateKey {
                    atom_type: at.name.clone(),
                    attr: at.attributes[*attr].name.clone(),
                    value: v.to_string(),
                });
            }
            m.insert(key, id);
        }
        let atom = Atom::new(id, values);
        // Primary record.
        let ptr = store.file.insert(&atom.encode())?;
        self.stats.records_written.fetch_add(1, Ordering::Relaxed);
        self.addresses.set_primary(id, ptr);
        store.count.fetch_add(1, Ordering::Relaxed);
        // Implicit back-reference maintenance.
        let mut ops = Vec::new();
        for (i, attr) in at.attributes.iter().enumerate() {
            if attr.ty.is_reference() {
                ops.extend(backref_ops(
                    &self.schema,
                    id,
                    i,
                    &attr.ty.null_value(),
                    &atom.values[i],
                ));
            }
        }
        self.apply_backref_ops(&ops)?;
        // Tuning structures.
        self.structures_on_insert(&atom)?;
        Ok(id)
    }

    /// Re-creates an atom under its *original* logical address (used by
    /// transaction rollback to undo a delete — Section 4's selective
    /// in-transaction recovery). Behaves like insert (integrity, keys,
    /// structures) but does not generate a fresh surrogate.
    pub fn restore_atom(&self, atom: Atom) -> AccessResult<()> {
        let id = atom.id;
        if self.addresses.exists(id) {
            return Err(AccessError::AtomAlreadyExists(id));
        }
        let at = self
            .schema
            .atom_type(id.atom_type)
            .ok_or(AccessError::NoSuchAtomType(id.atom_type))?
            .clone();
        let mut values = atom.values;
        while values.len() < at.attributes.len() {
            values.push(at.attributes[values.len()].ty.null_value());
        }
        values[at.identifier_index()] = Value::Id(id);
        self.schema.check_atom_values(id.atom_type, &values)?;
        self.check_references(&at, id, &values)?;
        let store = self.store_of(id.atom_type)?;
        // Surrogates are never reused: keep the counter beyond this id.
        store.next_seq.fetch_max(id.seq + 1, Ordering::Relaxed);
        for (attr, map) in &store.key_maps {
            let v = &values[*attr];
            if matches!(v, Value::Null) {
                continue;
            }
            let key = encode_composite_key(std::slice::from_ref(v));
            let mut m = map.write();
            if m.contains_key(&key) {
                return Err(AccessError::DuplicateKey {
                    atom_type: at.name.clone(),
                    attr: at.attributes[*attr].name.clone(),
                    value: v.to_string(),
                });
            }
            m.insert(key, id);
        }
        let restored = Atom::new(id, values);
        let ptr = store.file.insert(&restored.encode())?;
        self.stats.records_written.fetch_add(1, Ordering::Relaxed);
        self.addresses.set_primary(id, ptr);
        store.count.fetch_add(1, Ordering::Relaxed);
        let mut ops = Vec::new();
        for (i, attr) in at.attributes.iter().enumerate() {
            if attr.ty.is_reference() {
                ops.extend(backref_ops(
                    &self.schema,
                    id,
                    i,
                    &attr.ty.null_value(),
                    &restored.values[i],
                ));
            }
        }
        self.apply_backref_ops(&ops)?;
        self.structures_on_insert(&restored)?;
        Ok(())
    }

    /// Resolves named attribute assignments against a type name into the
    /// positional value vector `insert_atom` expects (missing attributes
    /// pre-filled with their type-appropriate null). Shared by the
    /// named-insert path here and the MQL `INSERT` statement upstairs.
    pub fn resolve_named_values(
        &self,
        type_name: &str,
        attrs: &[(&str, Value)],
    ) -> AccessResult<(AtomTypeId, Vec<Value>)> {
        let at = self
            .schema
            .type_by_name(type_name)
            .ok_or_else(|| AccessError::Schema(prima_mad::SchemaError::UnknownAtomType(type_name.into())))?
            .clone();
        let mut values: Vec<Value> =
            at.attributes.iter().map(|a| a.ty.null_value()).collect();
        for (name, v) in attrs {
            let idx = at.attribute_index(name).ok_or_else(|| {
                AccessError::Schema(prima_mad::SchemaError::UnknownAttribute {
                    atom_type: at.name.clone(),
                    attr: (*name).to_string(),
                })
            })?;
            values[idx] = v.clone();
        }
        Ok((at.id, values))
    }

    /// Insert with named attributes (missing ones unset).
    pub fn insert_atom_named(
        &self,
        type_name: &str,
        attrs: &[(&str, Value)],
    ) -> AccessResult<AtomId> {
        let (t, values) = self.resolve_named_values(type_name, attrs)?;
        self.insert_atom(t, values)
    }

    fn check_references(
        &self,
        at: &prima_mad::AtomType,
        from: AtomId,
        values: &[Value],
    ) -> AccessResult<()> {
        for (i, attr) in at.attributes.iter().enumerate() {
            if let Some(assoc) = self.schema.association_of(at.id, i) {
                for target in values[i].referenced_ids() {
                    if target.atom_type != assoc.to.atom_type {
                        return Err(AccessError::ReferenceTypeMismatch {
                            attr: attr.name.clone(),
                            expected: assoc.to.atom_type,
                            got: target,
                        });
                    }
                    if !self.addresses.exists(target) {
                        return Err(AccessError::DanglingReference { from, to: target });
                    }
                }
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Read
    // -----------------------------------------------------------------

    /// Reads an atom, optionally projecting onto selected attributes.
    /// With a projection, the cheapest *fresh* redundant copy covering it
    /// is chosen (paper: "the one with minimum access cost should be
    /// selected"); partitions beat the primary because their records are
    /// denser.
    pub fn read_atom(&self, id: AtomId, projection: Option<&[usize]>) -> AccessResult<Atom> {
        if let Some(proj) = projection {
            let structures = self.structures.read();
            // Candidate partitions covering the projection, fresh copies only.
            for placement in self.addresses.placements(id) {
                if placement.stale {
                    continue;
                }
                if let Some(p) = structures.partitions.get(&placement.structure) {
                    if p.covers(proj) {
                        self.stats.partition_reads.fetch_add(1, Ordering::Relaxed);
                        return Ok(p.read(placement.ptr)?.project(proj));
                    }
                }
            }
        }
        let atom = self.read_primary(id)?;
        self.stats.primary_reads.fetch_add(1, Ordering::Relaxed);
        Ok(match projection {
            Some(proj) => atom.project(proj),
            None => atom,
        })
    }

    /// Batched read: semantically identical to `ids.iter().map(|id|
    /// read_atom(id, projection))`, including result order, projection
    /// choice and error behaviour (the error of the lowest-position
    /// failing id wins, as it would sequentially) — but primary-record
    /// fetches are **grouped by owning page**, so each data page is fixed
    /// once per batch instead of once per atom. This amortises shard-lock
    /// traffic and LRU touches across all atoms resident on the page (the
    /// vertical molecule-assembly fast path; see Section 3.3 on fix/unfix
    /// cost).
    ///
    /// Atoms whose projection is served by a fresh covering partition fall
    /// back to the per-atom partition read, exactly as `read_atom` would.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn read_atoms_batch(
        &self,
        ids: &[AtomId],
        projection: Option<&[usize]>,
    ) -> AccessResult<Vec<Atom>> {
        let mut opt = Vec::new();
        self.batch_read_inner(ids, projection, &mut opt, true)?;
        // `strict` turned unknown atoms into position-ordered errors, so
        // every remaining entry is present.
        // lint: allow(error-hygiene, strict batch mode errored on any miss two lines up; remaining entries are all Some)
        Ok(opt.into_iter().map(|a| a.expect("strict batch entry")).collect())
    }

    /// Missing-tolerant batched read: like [`AccessSystem::read_atoms_batch`]
    /// but unknown atoms yield `None` instead of failing the whole batch
    /// (molecule assembly skips dangling ids defensively). Storage-level
    /// failures still propagate.
    pub fn read_atoms_batch_opt(
        &self,
        ids: &[AtomId],
        projection: Option<&[usize]>,
    ) -> AccessResult<Vec<Option<Atom>>> {
        let mut out = Vec::new();
        self.read_atoms_batch_into(ids, projection, &mut out)?;
        Ok(out)
    }

    /// [`AccessSystem::read_atoms_batch_opt`] writing into a caller-owned
    /// buffer (cleared first), so per-level callers can recycle it.
    pub fn read_atoms_batch_into(
        &self,
        ids: &[AtomId],
        projection: Option<&[usize]>,
        out: &mut Vec<Option<Atom>>,
    ) -> AccessResult<()> {
        self.batch_read_inner(ids, projection, out, false)
    }

    /// Shared batch-read core. `strict` makes an unknown atom an error
    /// (`NoSuchAtom`) competing position-wise with every other failure, so
    /// the returned error is the one a sequential `read_atom` loop would
    /// hit first; tolerant mode leaves unknown atoms as `None`.
    fn batch_read_inner(
        &self,
        ids: &[AtomId],
        projection: Option<&[usize]>,
        out: &mut Vec<Option<Atom>>,
        strict: bool,
    ) -> AccessResult<()> {
        out.clear();
        // Degenerate batches skip the page-grouping machinery: one atom
        // cannot amortise anything (molecule levels with fan-out 1 hit
        // this constantly).
        if ids.len() <= 1 {
            for &id in ids {
                out.push(match self.read_atom(id, projection) {
                    Ok(a) => Some(a),
                    Err(AccessError::NoSuchAtom(_)) if !strict => None,
                    Err(e) => return Err(e),
                });
            }
            return Ok(());
        }
        let probe_t = prima_storage::probe::timer();
        out.resize_with(ids.len(), || None);
        // Lowest-position failure seen so far; reported once the whole
        // batch has been walked (matching sequential error order).
        let mut first_err: Option<(usize, AccessError)> = None;
        let record_err = |err_slot: &mut Option<(usize, AccessError)>, i: usize, e| {
            if err_slot.as_ref().is_none_or(|(p, _)| i < *p) {
                *err_slot = Some((i, e));
            }
        };
        // (atom type, page) -> positions in `ids` + their slots, built in
        // input order so per-page decode order is deterministic. Typical
        // batches touch few distinct pages (linear probe); large scattered
        // batches switch to a hashed index to stay linear overall.
        let mut groups: Vec<PageGroup> = Vec::new();
        let mut group_index: Option<HashMap<(AtomTypeId, u32), usize>> =
            (ids.len() > 64).then(HashMap::new);
        {
            // One structure-registry lock for the whole grouping pre-pass
            // (not one per id); released before any page is fixed, like
            // read_atom.
            let structures = projection.map(|_| self.structures.read());
            'ids: for (i, &id) in ids.iter().enumerate() {
                if let (Some(proj), Some(structures)) = (projection, structures.as_ref()) {
                    // Cheapest fresh covering copy first, as read_atom does.
                    for placement in self.addresses.placements(id) {
                        if placement.stale {
                            continue;
                        }
                        if let Some(p) = structures.partitions.get(&placement.structure) {
                            if p.covers(proj) {
                                match p.read(placement.ptr) {
                                    Ok(a) => {
                                        self.stats
                                            .partition_reads
                                            .fetch_add(1, Ordering::Relaxed);
                                        out[i] = Some(a.project(proj));
                                    }
                                    Err(e) => record_err(&mut first_err, i, e),
                                }
                                continue 'ids;
                            }
                        }
                    }
                }
                let Some(ptr) = self.addresses.primary(id) else {
                    // Unknown atom: an error in strict mode, a hole otherwise.
                    if strict {
                        record_err(&mut first_err, i, AccessError::NoSuchAtom(id));
                    }
                    continue;
                };
                let key = (id.atom_type, ptr.page);
                let slot = match &mut group_index {
                    Some(index) => index.get(&key).copied(),
                    None => groups.iter().position(|(k, _)| *k == key),
                };
                match slot {
                    Some(g) => groups[g].1.push((i, ptr.slot)),
                    None => {
                        if let Some(index) = &mut group_index {
                            index.insert(key, groups.len());
                        }
                        groups.push((key, vec![(i, ptr.slot)]));
                    }
                }
            }
        }
        self.stats.batch_reads.fetch_add(1, Ordering::Relaxed);
        self.stats.batch_atoms.fetch_add(ids.len() as u64, Ordering::Relaxed);
        self.stats.batch_pages.fetch_add(groups.len() as u64, Ordering::Relaxed);
        for ((atom_type, page), entries) in groups {
            let store = self.store_of(atom_type)?;
            let slots: Vec<u16> = entries.iter().map(|(_, s)| *s).collect();
            // Decode in place under the (single) page fix — no per-record
            // byte-vector copy. Entries are position-ordered within the
            // group, so the first failure here is the group's lowest.
            let mut fail_pos = entries[0].0;
            let read = store.file.read_batch_on_page_with(page, &slots, |k, bytes| {
                fail_pos = entries[k].0;
                let Some(bytes) = bytes else {
                    // The address table points at a freed slot: surface the
                    // same storage error a direct read would produce.
                    return Err(AccessError::Storage(
                        prima_storage::StorageError::PageNotAllocated {
                            segment: store.file.segment(),
                            page,
                        },
                    ));
                };
                let atom = Atom::decode(bytes)?;
                self.stats.primary_reads.fetch_add(1, Ordering::Relaxed);
                out[entries[k].0] = Some(match projection {
                    Some(proj) => atom.project(proj),
                    None => atom,
                });
                Ok(())
            });
            if let Err(e) = read {
                record_err(&mut first_err, fail_pos, e);
            }
        }
        prima_storage::probe::emit_elapsed(
            probe_t,
            prima_storage::probe::ProbeEvent::BatchRead,
            ids.len() as u64,
        );
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Reads the primary record directly.
    pub(crate) fn read_primary(&self, id: AtomId) -> AccessResult<Atom> {
        let ptr = self.addresses.primary(id).ok_or(AccessError::NoSuchAtom(id))?;
        let store = self.store_of(id.atom_type)?;
        Atom::decode(&store.file.read(ptr)?)
    }

    /// True if the atom exists.
    pub fn exists(&self, id: AtomId) -> bool {
        self.addresses.exists(id)
    }

    /// Key lookup: the atom whose `KEYS_ARE` attribute equals `value`.
    pub fn lookup_by_key(
        &self,
        t: AtomTypeId,
        attr: usize,
        value: &Value,
    ) -> AccessResult<Option<AtomId>> {
        let store = self.store_of(t)?;
        let Some((_, map)) = store.key_maps.iter().find(|(a, _)| *a == attr) else {
            return Ok(None);
        };
        let key = encode_composite_key(std::slice::from_ref(value));
        Ok(map.read().get(&key).copied())
    }

    // -----------------------------------------------------------------
    // Modify
    // -----------------------------------------------------------------

    /// Modifies selected attributes of an atom. Reference-attribute
    /// changes trigger implicit back-reference updates; redundant copies
    /// follow the update policy.
    pub fn modify_atom(&self, id: AtomId, updates: &[(usize, Value)]) -> AccessResult<()> {
        let at = self
            .schema
            .atom_type(id.atom_type)
            .ok_or(AccessError::NoSuchAtomType(id.atom_type))?
            .clone();
        let id_idx = at.identifier_index();
        if updates.iter().any(|(i, _)| *i == id_idx) {
            return Err(AccessError::IdentifierImmutable(id));
        }
        let old = self.read_primary(id)?;
        let mut new_values = old.values.clone();
        for (i, v) in updates {
            if *i >= new_values.len() {
                return Err(AccessError::BadAttribute { atom_type: id.atom_type, attr: *i });
            }
            new_values[*i] = v.clone();
        }
        self.schema.check_atom_values(id.atom_type, &new_values)?;
        self.check_references(&at, id, &new_values)?;
        // Key maintenance.
        let store = self.store_of(id.atom_type)?;
        for (attr, map) in &store.key_maps {
            let old_v = &old.values[*attr];
            let new_v = &new_values[*attr];
            if old_v == new_v {
                continue;
            }
            let mut m = map.write();
            if !matches!(new_v, Value::Null) {
                let new_key = encode_composite_key(std::slice::from_ref(new_v));
                if let Some(existing) = m.get(&new_key) {
                    if *existing != id {
                        return Err(AccessError::DuplicateKey {
                            atom_type: at.name.clone(),
                            attr: at.attributes[*attr].name.clone(),
                            value: new_v.to_string(),
                        });
                    }
                }
                m.insert(new_key, id);
            }
            if !matches!(old_v, Value::Null) {
                let old_key = encode_composite_key(std::slice::from_ref(old_v));
                if m.get(&old_key) == Some(&id) && old_v != new_v {
                    m.remove(&old_key);
                }
            }
        }
        // Back-reference deltas.
        let mut ops = Vec::new();
        for (i, _) in updates {
            ops.extend(backref_ops(&self.schema, id, *i, &old.values[*i], &new_values[*i]));
        }
        // Rewrite the primary record — the "one physical record modified
        // now" of deferred update.
        let new_atom = Atom::new(id, new_values);
        self.write_primary(&new_atom)?;
        self.apply_backref_ops(&ops)?;
        // Redundant copies.
        self.structures_on_modify(&old, &new_atom)?;
        Ok(())
    }

    /// Resolves named attribute updates against the atom's type into the
    /// positional list [`AccessSystem::modify_atom`] expects. Shared by
    /// the named-modify path here and the session's atom-level interface.
    pub fn resolve_named_updates(
        &self,
        id: AtomId,
        updates: &[(&str, Value)],
    ) -> AccessResult<Vec<(usize, Value)>> {
        let at = self
            .schema
            .atom_type(id.atom_type)
            .ok_or(AccessError::NoSuchAtomType(id.atom_type))?;
        let mut by_idx = Vec::with_capacity(updates.len());
        for (name, v) in updates {
            let idx = at.attribute_index(name).ok_or_else(|| {
                AccessError::Schema(prima_mad::SchemaError::UnknownAttribute {
                    atom_type: at.name.clone(),
                    attr: (*name).to_string(),
                })
            })?;
            by_idx.push((idx, v.clone()));
        }
        Ok(by_idx)
    }

    /// Named-attribute modify.
    pub fn modify_atom_named(&self, id: AtomId, updates: &[(&str, Value)]) -> AccessResult<()> {
        let by_idx = self.resolve_named_updates(id, updates)?;
        self.modify_atom(id, &by_idx)
    }

    fn write_primary(&self, atom: &Atom) -> AccessResult<()> {
        let store = self.store_of(atom.id.atom_type)?;
        let ptr = self.addresses.primary(atom.id).ok_or(AccessError::NoSuchAtom(atom.id))?;
        let new_ptr = store.file.update(ptr, &atom.encode())?;
        self.stats.records_written.fetch_add(1, Ordering::Relaxed);
        if new_ptr != ptr {
            self.addresses.set_primary(atom.id, new_ptr);
        }
        Ok(())
    }

    /// Applies implicit updates to referenced atoms' primary records and
    /// (per policy) their redundant copies.
    fn apply_backref_ops(&self, ops: &[BackRefOp]) -> AccessResult<()> {
        for op in ops {
            let old = self.read_primary(op.target)?;
            let mut values = old.values.clone();
            apply_backref(&mut values, op);
            let new_atom = Atom::new(op.target, values);
            self.write_primary(&new_atom)?;
            self.stats.backref_updates.fetch_add(1, Ordering::Relaxed);
            self.structures_on_modify(&old, &new_atom)?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Delete
    // -----------------------------------------------------------------

    /// Deletes an atom; all references to it are disconnected
    /// (back-references adjusted on both sides), its redundant copies
    /// removed and its surrogate released.
    pub fn delete_atom(&self, id: AtomId) -> AccessResult<()> {
        let at = self
            .schema
            .atom_type(id.atom_type)
            .ok_or(AccessError::NoSuchAtomType(id.atom_type))?
            .clone();
        let old = self.read_primary(id)?;
        // Disconnect: for each reference this atom holds, remove the
        // back-reference in the target. (Symmetry means every atom that
        // references `id` is itself referenced from `id`, so this covers
        // both directions.)
        let mut ops = Vec::new();
        for (i, attr) in at.attributes.iter().enumerate() {
            if attr.ty.is_reference() {
                ops.extend(backref_ops(
                    &self.schema,
                    id,
                    i,
                    &old.values[i],
                    &attr.ty.null_value(),
                ));
            }
        }
        self.apply_backref_ops(&ops)?;
        // Keys.
        let store = self.store_of(id.atom_type)?;
        for (attr, map) in &store.key_maps {
            let v = &old.values[*attr];
            if !matches!(v, Value::Null) {
                map.write().remove(&encode_composite_key(std::slice::from_ref(v)));
            }
        }
        // Structures.
        self.structures_on_delete(&old)?;
        // Primary record and address entry.
        if let Some(ptr) = self.addresses.primary(id) {
            store.file.delete(ptr)?;
        }
        self.addresses.remove_atom(id);
        store.count.fetch_sub(1, Ordering::Relaxed);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Tuning structures: creation / drop
    // -----------------------------------------------------------------

    fn register_name(&self, name: &str) -> AccessResult<StructureId> {
        let mut s = self.structures.write();
        if s.by_name.contains_key(name) {
            return Err(AccessError::DuplicateStructure(name.to_string()));
        }
        let id = s.next_id;
        s.next_id += 1;
        s.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Creates a partition over `attrs` of `t` and populates it from the
    /// existing atoms. "Such a redundant structure … may be generated and
    /// dropped at any time."
    pub fn create_partition(
        &self,
        name: &str,
        t: AtomTypeId,
        attrs: Vec<usize>,
    ) -> AccessResult<StructureId> {
        let at = self.schema.atom_type(t).ok_or(AccessError::NoSuchAtomType(t))?;
        let id_idx = at.identifier_index();
        let sid = self.register_name(name)?;
        let part = Arc::new(Partition::create(
            Arc::clone(&self.storage),
            sid,
            name,
            t,
            attrs,
            id_idx,
        )?);
        // Populate.
        let ids = self.all_ids(t)?;
        for aid in ids {
            let atom = self.read_primary(aid)?;
            let ptr = part.store(&atom)?;
            self.addresses.set_placement(aid, sid, ptr);
        }
        self.structures.write().partitions.insert(sid, part);
        Ok(sid)
    }

    /// Creates a sort order over `key_attrs` of `t`, populated.
    pub fn create_sort_order(
        &self,
        name: &str,
        t: AtomTypeId,
        key_attrs: Vec<usize>,
    ) -> AccessResult<StructureId> {
        let sid = self.register_name(name)?;
        let so = Arc::new(SortOrder::create(
            Arc::clone(&self.storage),
            sid,
            name,
            t,
            key_attrs,
        )?);
        for aid in self.all_ids(t)? {
            let atom = self.read_primary(aid)?;
            let ptr = so.insert(&atom)?;
            self.addresses.set_placement(aid, sid, ptr);
        }
        self.structures.write().sort_orders.insert(sid, so);
        Ok(sid)
    }

    /// Creates a B*-tree access path over `key_attrs` of `t`, populated.
    pub fn create_btree_index(
        &self,
        name: &str,
        t: AtomTypeId,
        key_attrs: Vec<usize>,
    ) -> AccessResult<StructureId> {
        let sid = self.register_name(name)?;
        let idx = Arc::new(BTreeIndex {
            id: sid,
            name: name.to_string(),
            atom_type: t,
            key_attrs,
            tree: BTree::create(Arc::clone(&self.storage))?,
        });
        for aid in self.all_ids(t)? {
            let atom = self.read_primary(aid)?;
            idx.tree.insert(&idx.key_of(&atom.values), aid)?;
        }
        self.structures.write().btrees.insert(sid, idx);
        Ok(sid)
    }

    /// Creates a multi-dimensional (grid file) access path, populated.
    pub fn create_grid_index(
        &self,
        name: &str,
        t: AtomTypeId,
        key_attrs: Vec<usize>,
    ) -> AccessResult<StructureId> {
        let sid = self.register_name(name)?;
        let grid = GridFile::create(Arc::clone(&self.storage), key_attrs.len())?;
        let idx = Arc::new(GridIndex {
            id: sid,
            name: name.to_string(),
            atom_type: t,
            key_attrs,
            grid: RwLock::new_ranked(grid, rank::ACCESS + 3),
        });
        for aid in self.all_ids(t)? {
            let atom = self.read_primary(aid)?;
            let keys = idx.keys_of(&atom.values);
            idx.grid.write().insert(keys, aid)?;
        }
        self.structures.write().grids.insert(sid, idx);
        Ok(sid)
    }

    /// Declares an atom-cluster type: `char_type`'s reference attributes
    /// `member_attrs` define membership. Clusters for all existing
    /// characteristic atoms are materialised.
    pub fn create_cluster_type(
        &self,
        name: &str,
        char_type: AtomTypeId,
        member_attrs: Vec<usize>,
        page_size: PageSize,
    ) -> AccessResult<StructureId> {
        let at = self
            .schema
            .atom_type(char_type)
            .ok_or(AccessError::NoSuchAtomType(char_type))?;
        for &a in &member_attrs {
            let attr = at
                .attributes
                .get(a)
                .ok_or(AccessError::BadAttribute { atom_type: char_type, attr: a })?;
            if !attr.ty.is_reference() {
                return Err(AccessError::StructureMismatch {
                    name: name.to_string(),
                    detail: format!("attribute '{}' is not a reference", attr.name),
                });
            }
        }
        let sid = self.register_name(name)?;
        let ct = Arc::new(AtomClusterType::create(
            Arc::clone(&self.storage),
            sid,
            name,
            char_type,
            member_attrs,
            page_size,
        )?);
        self.structures.write().clusters.insert(sid, Arc::clone(&ct));
        for ch in self.all_ids(char_type)? {
            self.materialize_cluster(&ct, ch)?;
        }
        Ok(sid)
    }

    /// Drops any tuning structure by name.
    pub fn drop_structure(&self, name: &str) -> AccessResult<()> {
        let mut s = self.structures.write();
        let sid = s
            .by_name
            .remove(name)
            .ok_or_else(|| AccessError::NoSuchStructure(name.to_string()))?;
        s.partitions.remove(&sid);
        s.sort_orders.remove(&sid);
        s.btrees.remove(&sid);
        s.grids.remove(&sid);
        if s.clusters.remove(&sid).is_some() {
            let mut membership = self.cluster_membership.write();
            for (_, v) in membership.iter_mut() {
                v.retain(|(st, _)| *st != sid);
            }
        }
        drop(s);
        self.addresses.drop_structure(sid);
        self.deferred.purge_structure(sid);
        Ok(())
    }

    /// Looks up a structure id by name.
    pub fn structure_id(&self, name: &str) -> Option<StructureId> {
        self.structures.read().by_name.get(name).copied()
    }

    /// The partition registered under `name`, if it is one.
    pub fn partition(&self, name: &str) -> Option<Arc<Partition>> {
        let s = self.structures.read();
        s.by_name.get(name).and_then(|sid| s.partitions.get(sid)).cloned()
    }

    pub fn sort_order(&self, name: &str) -> Option<Arc<SortOrder>> {
        let s = self.structures.read();
        s.by_name.get(name).and_then(|sid| s.sort_orders.get(sid)).cloned()
    }

    pub fn btree_index(&self, name: &str) -> Option<Arc<BTreeIndex>> {
        let s = self.structures.read();
        s.by_name.get(name).and_then(|sid| s.btrees.get(sid)).cloned()
    }

    pub fn grid_index(&self, name: &str) -> Option<Arc<GridIndex>> {
        let s = self.structures.read();
        s.by_name.get(name).and_then(|sid| s.grids.get(sid)).cloned()
    }

    pub fn cluster_type(&self, name: &str) -> Option<Arc<AtomClusterType>> {
        let s = self.structures.read();
        s.by_name.get(name).and_then(|sid| s.clusters.get(sid)).cloned()
    }

    /// Whether the copy of `id` in `structure` is stale (deferred update
    /// pending) or missing — in both cases a reader must use the primary.
    pub fn deferred_stale(&self, id: AtomId, structure: StructureId) -> bool {
        self.addresses.placement(id, structure).is_none_or(|p| p.stale)
    }

    /// Sort order by structure id (scan internals).
    pub fn sort_order_by_id(&self, sid: StructureId) -> Option<Arc<SortOrder>> {
        self.structures.read().sort_orders.get(&sid).cloned()
    }

    /// Partitions available for an atom type (scan planning).
    pub fn partitions_of(&self, t: AtomTypeId) -> Vec<Arc<Partition>> {
        self.structures
            .read()
            .partitions
            .values()
            .filter(|p| p.atom_type == t)
            .cloned()
            .collect()
    }

    /// Sort orders available for an atom type (scan planning).
    pub fn sort_orders_of(&self, t: AtomTypeId) -> Vec<Arc<SortOrder>> {
        self.structures
            .read()
            .sort_orders
            .values()
            .filter(|so| so.atom_type == t)
            .cloned()
            .collect()
    }

    /// B*-tree indexes available for an atom type.
    pub fn btrees_of(&self, t: AtomTypeId) -> Vec<Arc<BTreeIndex>> {
        self.structures
            .read()
            .btrees
            .values()
            .filter(|ix| ix.atom_type == t)
            .cloned()
            .collect()
    }

    /// Cluster types whose characteristic type is `t`.
    pub fn cluster_types_of(&self, t: AtomTypeId) -> Vec<Arc<AtomClusterType>> {
        self.structures
            .read()
            .clusters
            .values()
            .filter(|ct| ct.char_type == t)
            .cloned()
            .collect()
    }

    // -----------------------------------------------------------------
    // Structure maintenance on data changes
    // -----------------------------------------------------------------

    fn structures_on_insert(&self, atom: &Atom) -> AccessResult<()> {
        let structures = self.structures.read();
        let t = atom.id.atom_type;
        for p in structures.partitions.values().filter(|p| p.atom_type == t) {
            let ptr = p.store(atom)?;
            self.stats.records_written.fetch_add(1, Ordering::Relaxed);
            self.addresses.set_placement(atom.id, p.id, ptr);
        }
        for so in structures.sort_orders.values().filter(|s| s.atom_type == t) {
            let ptr = so.insert(atom)?;
            self.stats.records_written.fetch_add(1, Ordering::Relaxed);
            self.addresses.set_placement(atom.id, so.id, ptr);
        }
        for ix in structures.btrees.values().filter(|ix| ix.atom_type == t) {
            ix.tree.insert(&ix.key_of(&atom.values), atom.id)?;
        }
        for gx in structures.grids.values().filter(|gx| gx.atom_type == t) {
            let keys = gx.keys_of(&atom.values);
            gx.grid.write().insert(keys, atom.id)?;
        }
        // A new characteristic atom generates a new cluster.
        let cluster_types: Vec<Arc<AtomClusterType>> = structures
            .clusters
            .values()
            .filter(|ct| ct.char_type == t)
            .cloned()
            .collect();
        drop(structures);
        for ct in cluster_types {
            self.materialize_cluster(&ct, atom.id)?;
        }
        // If the new atom is referenced by characteristic atoms (it can
        // be, when inserted with back-references pre-connected), refresh
        // those clusters.
        self.queue_member_cluster_refresh(atom.id)?;
        Ok(())
    }

    fn structures_on_modify(&self, old: &Atom, new: &Atom) -> AccessResult<()> {
        let policy = self.update_policy();
        let structures = self.structures.read();
        let t = new.id.atom_type;
        for p in structures.partitions.values().filter(|p| p.atom_type == t) {
            match policy {
                UpdatePolicy::Immediate => {
                    if let Some(pl) = self.addresses.placement(new.id, p.id) {
                        let ptr = p.update(pl.ptr, new)?;
                        self.stats.records_written.fetch_add(1, Ordering::Relaxed);
                        self.addresses.set_placement(new.id, p.id, ptr);
                    }
                }
                UpdatePolicy::Deferred => {
                    if self.addresses.mark_stale(new.id, p.id) {
                        self.deferred
                            .push(PendingOp::RefreshCopy { structure: p.id, atom: new.id });
                    }
                }
            }
        }
        for so in structures.sort_orders.values().filter(|s| s.atom_type == t) {
            match policy {
                UpdatePolicy::Immediate => {
                    let old_key = so.key_of(old);
                    let ptr = so.update(&old_key, new)?;
                    self.stats.records_written.fetch_add(1, Ordering::Relaxed);
                    self.addresses.set_placement(new.id, so.id, ptr);
                }
                UpdatePolicy::Deferred => {
                    if self.addresses.mark_stale(new.id, so.id) {
                        self.deferred
                            .push(PendingOp::RefreshCopy { structure: so.id, atom: new.id });
                    }
                }
            }
        }
        // Access paths are maintained immediately (they hold no atom
        // copies, only entries; a stale entry would lose atoms).
        for ix in structures.btrees.values().filter(|ix| ix.atom_type == t) {
            let ok = ix.key_of(&old.values);
            let nk = ix.key_of(&new.values);
            if ok != nk {
                ix.tree.remove(&ok, new.id)?;
                ix.tree.insert(&nk, new.id)?;
            }
        }
        for gx in structures.grids.values().filter(|gx| gx.atom_type == t) {
            let ok = gx.keys_of(&old.values);
            let nk = gx.keys_of(&new.values);
            if ok != nk {
                let mut g = gx.grid.write();
                g.remove(&ok, new.id)?;
                g.insert(nk, new.id)?;
            }
        }
        // Characteristic atom changed -> its cluster must be rebuilt.
        let char_cluster_types: Vec<Arc<AtomClusterType>> = structures
            .clusters
            .values()
            .filter(|ct| ct.char_type == t && ct.contains(new.id))
            .cloned()
            .collect();
        drop(structures);
        for ct in char_cluster_types {
            match policy {
                UpdatePolicy::Immediate => self.materialize_cluster(&ct, new.id)?,
                UpdatePolicy::Deferred => self.deferred.push(PendingOp::RefreshCluster {
                    structure: ct.id,
                    characteristic: new.id,
                }),
            }
        }
        // Member atom changed -> clusters containing its copy are stale.
        self.queue_member_cluster_refresh(new.id)?;
        Ok(())
    }

    fn structures_on_delete(&self, atom: &Atom) -> AccessResult<()> {
        let structures = self.structures.read();
        let t = atom.id.atom_type;
        for p in structures.partitions.values().filter(|p| p.atom_type == t) {
            if let Some(pl) = self.addresses.remove_placement(atom.id, p.id) {
                p.remove(pl.ptr)?;
            }
        }
        for so in structures.sort_orders.values().filter(|s| s.atom_type == t) {
            let key = so.key_of(atom);
            so.remove(&key, atom.id)?;
            self.addresses.remove_placement(atom.id, so.id);
        }
        for ix in structures.btrees.values().filter(|ix| ix.atom_type == t) {
            ix.tree.remove(&ix.key_of(&atom.values), atom.id)?;
        }
        for gx in structures.grids.values().filter(|gx| gx.atom_type == t) {
            let keys = gx.keys_of(&atom.values);
            gx.grid.write().remove(&keys, atom.id)?;
        }
        // Deleting a characteristic atom deletes the whole cluster.
        let char_cluster_types: Vec<Arc<AtomClusterType>> = structures
            .clusters
            .values()
            .filter(|ct| ct.char_type == t)
            .cloned()
            .collect();
        drop(structures);
        for ct in char_cluster_types {
            if ct.contains(atom.id) {
                // Unregister memberships of this cluster's members.
                let members = ct.members(atom.id)?;
                let mut membership = self.cluster_membership.write();
                for m in members {
                    if let Some(v) = membership.get_mut(&m) {
                        v.retain(|(st, ch)| !(*st == ct.id && *ch == atom.id));
                    }
                }
                drop(membership);
                ct.drop_cluster(atom.id)?;
            }
        }
        // A deleted member makes containing clusters stale. (Back-ref
        // maintenance already updated the characteristic atoms; their
        // modify path queued the refresh. This covers direct membership
        // without references, which cannot happen, so it is just a
        // safety net.)
        self.queue_member_cluster_refresh(atom.id)?;
        self.cluster_membership.write().remove(&atom.id);
        Ok(())
    }

    fn queue_member_cluster_refresh(&self, member: AtomId) -> AccessResult<()> {
        let containing: Vec<(StructureId, AtomId)> = self
            .cluster_membership
            .read()
            .get(&member)
            .cloned()
            .unwrap_or_default();
        if containing.is_empty() {
            return Ok(());
        }
        let policy = self.update_policy();
        for (sid, ch) in containing {
            match policy {
                UpdatePolicy::Immediate => {
                    let ct = self.structures.read().clusters.get(&sid).cloned();
                    if let Some(ct) = ct {
                        if ct.contains(ch) {
                            self.materialize_cluster(&ct, ch)?;
                        }
                    }
                }
                UpdatePolicy::Deferred => self
                    .deferred
                    .push(PendingOp::RefreshCluster { structure: sid, characteristic: ch }),
            }
        }
        Ok(())
    }

    /// Resolves the member atoms of a characteristic atom and writes the
    /// cluster.
    fn materialize_cluster(&self, ct: &AtomClusterType, ch: AtomId) -> AccessResult<()> {
        let char_atom = self.read_primary(ch)?;
        let mut members = Vec::new();
        let mut member_ids = Vec::new();
        for &a in &ct.member_attrs {
            for target in char_atom.values.get(a).map(prima_mad::Value::referenced_ids).unwrap_or_default()
            {
                if self.addresses.exists(target) {
                    members.push(self.read_primary(target)?);
                    member_ids.push(target);
                }
            }
        }
        // Maintain the reverse membership map: clear old entries for this
        // (structure, characteristic) pair, then record the new members.
        {
            let mut membership = self.cluster_membership.write();
            for (_, v) in membership.iter_mut() {
                v.retain(|(st, c)| !(*st == ct.id && *c == ch));
            }
            for m in &member_ids {
                membership.entry(*m).or_default().push((ct.id, ch));
            }
        }
        ct.materialize(ch, &members)?;
        self.stats.records_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    // -----------------------------------------------------------------
    // Deferred reconciliation
    // -----------------------------------------------------------------

    /// Applies all pending deferred maintenance. Returns the number of
    /// actions performed.
    pub fn reconcile(&self) -> AccessResult<usize> {
        let mut n = 0;
        while let Some(op) = self.deferred.pop() {
            match op {
                PendingOp::RefreshCopy { structure, atom } => {
                    if !self.addresses.exists(atom) {
                        continue;
                    }
                    let current = self.read_primary(atom)?;
                    let s = self.structures.read();
                    if let Some(p) = s.partitions.get(&structure) {
                        if let Some(pl) = self.addresses.placement(atom, structure) {
                            let ptr = p.update(pl.ptr, &current)?;
                            self.addresses.set_placement(atom, structure, ptr);
                        }
                    } else if let Some(so) = s.sort_orders.get(&structure) {
                        if let Some(pl) = self.addresses.placement(atom, structure) {
                            // The copy at pl.ptr still holds the OLD key;
                            // read it to unlink, then update.
                            let old_copy = so.read_copy(pl.ptr)?;
                            let old_key = so.key_of(&old_copy);
                            let ptr = so.update(&old_key, &current)?;
                            self.addresses.set_placement(atom, structure, ptr);
                        }
                    }
                }
                PendingOp::DropCopy { structure, atom } => {
                    let s = self.structures.read();
                    if let Some(pl) = self.addresses.remove_placement(atom, structure) {
                        if let Some(p) = s.partitions.get(&structure) {
                            p.remove(pl.ptr)?;
                        }
                    }
                }
                PendingOp::RefreshCluster { structure, characteristic } => {
                    let ct = self.structures.read().clusters.get(&structure).cloned();
                    if let Some(ct) = ct {
                        if self.addresses.exists(characteristic) && ct.contains(characteristic) {
                            self.materialize_cluster(&ct, characteristic)?;
                        }
                    }
                }
            }
            n += 1;
        }
        Ok(n)
    }

    // -----------------------------------------------------------------
    // Helpers
    // -----------------------------------------------------------------

    /// All live atom ids of a type, in physical order.
    pub fn all_ids(&self, t: AtomTypeId) -> AccessResult<Vec<AtomId>> {
        let store = self.store_of(t)?;
        let mut out = Vec::new();
        store.file.for_each(|_, bytes| {
            out.push(Atom::decode(bytes)?.id);
            Ok(())
        })?;
        Ok(out)
    }

    /// Is this attribute a reference whose declared element type is a
    /// set? Used by callers that need the value shape.
    pub fn is_ref_set_attr(&self, t: AtomTypeId, attr: usize) -> bool {
        self.schema
            .atom_type(t)
            .and_then(|at| at.attributes.get(attr))
            .is_some_and(|a| matches!(a.ty, AttrType::RefSet(..)))
    }
}
