//! E-SORT — Section 3.2: the sort scan's three strategies on the same
//! request. "Since sorting an entire atom type is expensive and time
//! consuming, the sort scan may be supported by a redundant storage
//! structure, the sort order. … It may engage an access path if
//! available, or has to perform the sort explicitly."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prima::{Prima, Value};
use prima_access::scan::{Scan, SortScan, SortSource};
use prima_bench::report;
use std::ops::Bound;

const DDL: &str = "
CREATE ATOM_TYPE m
  ( id : IDENTIFIER, m_no : INTEGER, v : INTEGER, pad : CHAR_VAR )
KEYS_ARE (m_no);
";

fn build(n: i64, structure: Option<&str>) -> Prima {
    let db = Prima::builder().buffer_bytes(64 << 20).build_with_ddl(DDL).unwrap();
    for i in 0..n {
        db.insert(
            "m",
            &[
                ("m_no", Value::Int(i)),
                ("v", Value::Int((i * 2654435761) % 100_000)),
                ("pad", Value::Str("p".repeat(40))),
            ],
        )
        .unwrap();
    }
    if let Some(ldl) = structure {
        db.ldl(ldl).unwrap();
    }
    db
}

fn run_scan(db: &Prima) -> (SortSource, usize) {
    let mut s = SortScan::open(
        db.access(),
        0,
        &[2],
        prima_access::Ssa::True,
        Bound::Unbounded,
        Bound::Unbounded,
    )
    .unwrap();
    let src = s.source();
    let n = s.collect_remaining().unwrap().len();
    (src, n)
}

fn bench_sort_scan(c: &mut Criterion) {
    let n = 20_000i64;
    let variants: [(&str, Option<&str>); 3] = [
        ("sort_order", Some("CREATE SORT ORDER so ON m (v)")),
        ("access_path", Some("CREATE ACCESS PATH ap ON m (v)")),
        ("explicit_sort", None),
    ];
    let mut g = c.benchmark_group("sort_scan");
    g.sample_size(10);
    for (label, ldl) in variants {
        let db = build(n, ldl);
        let (src, count) = run_scan(&db);
        report("SORT", label, "strategy", format!("{src:?}"));
        report("SORT", label, "atoms_delivered", count);
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| run_scan(&db))
        });
    }
    // Start/stop conditions: a narrow range should favour the access
    // path / sort order dramatically over the explicit sort (which pays
    // the full sort regardless).
    for (label, ldl) in variants {
        let db = build(n, ldl);
        g.bench_with_input(BenchmarkId::new("narrow_range", label), &label, |b, _| {
            b.iter(|| {
                let mut s = SortScan::open(
                    db.access(),
                    0,
                    &[2],
                    prima_access::Ssa::True,
                    Bound::Included(vec![Value::Int(1000)]),
                    Bound::Excluded(vec![Value::Int(2000)]),
                )
                .unwrap();
                s.collect_remaining().unwrap().len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sort_scan);
criterion_main!(benches);
