//! A real file-backed block device.
//!
//! [`FileDisk`] implements [`BlockDevice`] over one directory of ordinary
//! files — the "life beyond the process" half of the durability subsystem.
//! Each segment file maps 1:1 onto `segNNNNNN.<block_len>.blk` (the block
//! length rides in the name so [`FileDisk::open`] can re-register files
//! without any catalog), chained I/O is a single contiguous
//! `pread`/`pwrite` at `block * block_len`, and [`BlockDevice::sync`]
//! fsyncs every file plus the directory.
//!
//! The durability hooks live beside the block files:
//!
//! * `meta.bin` — the checkpoint metadata blob, replaced atomically via a
//!   write-to-temp + rename + dir-fsync dance;
//! * `wal.log` — the append-only log area; [`BlockDevice::wal_append`]
//!   appends and fsyncs in one call, so one group-commit force is exactly
//!   one synchronous log write.
//!
//! I/O statistics mirror [`crate::disk::SimDisk`]'s accounting (seeks are
//! modelled positionally over block addresses; real devices reorder, but
//! the *relative* contiguity signal is what benchmarks compare), so a
//! workload can be replayed against either backend and report the same
//! axes.

use crate::disk::{BlockAddr, BlockDevice, CostModel};
use crate::error::{StorageError, StorageResult};
use crate::stats::IoStats;
use parking_lot::{rank, Mutex, RwLock};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct DiskFile {
    file: File,
    block_len: usize,
    path: PathBuf,
}

#[derive(Default)]
struct ArmState {
    last: Option<BlockAddr>,
}

/// File-backed block device rooted at one directory. See module docs.
pub struct FileDisk {
    dir: PathBuf,
    // lockrank: device.0 — file directory; guards are released before
    // block I/O (the Arc<DiskFile> is cloned out).
    files: RwLock<HashMap<u32, Arc<DiskFile>>>,
    // lockrank: device.1 — log-file handle; held across the OS write by
    // design (this lock *is* the device-side append serialisation).
    wal: Mutex<File>,
    // lockrank: device.2 — arm-position cost model; leaf.
    arm: Mutex<ArmState>,
    cost: CostModel,
    stats: Arc<IoStats>,
}

impl std::fmt::Debug for FileDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileDisk").field("dir", &self.dir).finish_non_exhaustive()
    }
}

impl Drop for FileDisk {
    fn drop(&mut self) {
        // Release the directory lock if it is still ours. (A crash skips
        // this; the next opener detects the dead pid and takes over.)
        let lock_path = self.dir.join("LOCK");
        if let Ok(contents) = fs::read_to_string(&lock_path) {
            if contents.trim().parse::<u32>() == Ok(std::process::id()) {
                let _ = fs::remove_file(&lock_path);
            }
        }
    }
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::DeviceError(format!("{ctx}: {e}"))
}

fn seg_file_name(file: u32, block_len: usize) -> String {
    format!("seg{file:06}.{block_len}.blk")
}

/// Whether the process holding a lock is still alive. On Linux this
/// probes `/proc/<pid>`; elsewhere liveness cannot be checked without
/// libc, so every foreign pid is conservatively treated as alive (a
/// crashed owner's lock then needs manual removal — safe, not silent
/// corruption).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Single-opener guard: a `LOCK` file carrying the owning pid, created
/// atomically (`O_EXCL`) so two racing openers cannot both win. A lock
/// whose pid is dead is stale and is taken over — crash recovery must
/// not be blocked by the crashed owner's leftover. A lock held by *this*
/// process is also taken over: that is the kill-point harness (and any
/// embedder) reopening its own "crashed" instance; true same-process
/// double-opens are out of scope.
fn acquire_dir_lock(dir: &Path) -> StorageResult<()> {
    let lock_path = dir.join("LOCK");
    let my_pid = std::process::id();
    for _ in 0..3 {
        match OpenOptions::new().write(true).create_new(true).open(&lock_path) {
            Ok(mut f) => {
                f.write_all(format!("{my_pid}\n").as_bytes())
                    .map_err(|e| io_err("write LOCK", e))?;
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid != my_pid && pid_alive(pid) => {
                        return Err(StorageError::DeviceError(format!(
                            "database at {} is locked by running process {pid}",
                            dir.display()
                        )));
                    }
                    // Stale (dead pid / unreadable) or our own: remove
                    // and retry the atomic create — a concurrent taker
                    // may win the race, in which case the next iteration
                    // sees *its* live pid and errors out.
                    _ => {
                        let _ = fs::remove_file(&lock_path);
                    }
                }
            }
            Err(e) => return Err(io_err("create LOCK", e)),
        }
    }
    Err(StorageError::DeviceError(format!(
        "could not acquire LOCK at {} (contended)",
        dir.display()
    )))
}

/// Parses `segNNNNNN.<block_len>.blk` back into `(file, block_len)`.
fn parse_seg_name(name: &str) -> Option<(u32, usize)> {
    let rest = name.strip_prefix("seg")?.strip_suffix(".blk")?;
    let (num, len) = rest.split_once('.')?;
    Some((num.parse().ok()?, len.parse().ok()?))
}

impl FileDisk {
    /// Creates (or reuses) the directory and opens an empty device: any
    /// pre-existing segment files are **removed** (fresh database). Use
    /// [`FileDisk::open`] to attach to an existing database directory.
    pub fn create(dir: impl AsRef<Path>) -> StorageResult<FileDisk> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", e))?;
        // Lock before clearing: never destroy a database another live
        // process has open.
        acquire_dir_lock(&dir)?;
        for entry in fs::read_dir(&dir).map_err(|e| io_err("scan dir", e))? {
            let entry = entry.map_err(|e| io_err("scan dir", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if parse_seg_name(&name).is_some() || name == "meta.bin" || name == "wal.log" {
                fs::remove_file(entry.path()).map_err(|e| io_err("clear dir", e))?;
            }
        }
        Self::attach(dir)
    }

    /// Opens an existing database directory, re-registering every segment
    /// file found there (block lengths are encoded in the file names).
    pub fn open(dir: impl AsRef<Path>) -> StorageResult<FileDisk> {
        let dir = dir.as_ref().to_path_buf();
        if !dir.is_dir() {
            return Err(StorageError::DeviceError(format!(
                "no database directory at {}",
                dir.display()
            )));
        }
        acquire_dir_lock(&dir)?;
        let disk = Self::attach(dir)?;
        let entries: Vec<_> = fs::read_dir(&disk.dir)
            .map_err(|e| io_err("scan dir", e))?
            .collect::<Result<_, _>>()
            .map_err(|e| io_err("scan dir", e))?;
        let mut files = disk.files.write();
        for entry in entries {
            if let Some((file, block_len)) = parse_seg_name(&entry.file_name().to_string_lossy())
            {
                let f = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(entry.path())
                    .map_err(|e| io_err("open segment file", e))?;
                files.insert(
                    file,
                    Arc::new(DiskFile { file: f, block_len, path: entry.path() }),
                );
            }
        }
        drop(files);
        Ok(disk)
    }

    fn attach(dir: PathBuf) -> StorageResult<FileDisk> {
        let wal = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(dir.join("wal.log"))
            .map_err(|e| io_err("open wal.log", e))?;
        Ok(FileDisk {
            dir,
            files: RwLock::new_ranked(HashMap::new(), rank::DEVICE),
            wal: Mutex::new_ranked(wal, rank::DEVICE + 1),
            arm: Mutex::new_ranked(ArmState::default(), rank::DEVICE + 2),
            cost: CostModel::default(),
            stats: IoStats::new_shared(),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file(&self, file: u32) -> StorageResult<Arc<DiskFile>> {
        self.files.read().get(&file).cloned().ok_or(StorageError::UnknownSegment(file))
    }

    /// Same positional accounting as `SimDisk`: one arm, seeks on
    /// non-contiguous transfers, service time from the cost model.
    fn account(&self, addr: BlockAddr, blocks: u64, block_len: usize, write: bool, chained: bool) {
        let seek = {
            let mut arm = self.arm.lock();
            let seek = match arm.last {
                Some(prev) => !(prev.file == addr.file && prev.block + 1 == addr.block),
                None => true,
            };
            arm.last = Some(BlockAddr::new(addr.file, addr.block + blocks as u32 - 1));
            seek
        };
        let s = &self.stats;
        if seek {
            s.add(&s.seeks, 1);
        }
        let bytes = blocks * block_len as u64;
        if write {
            s.add(&s.block_writes, blocks);
            s.add(&s.bytes_written, bytes);
        } else {
            s.add(&s.block_reads, blocks);
            s.add(&s.bytes_read, bytes);
        }
        if chained {
            s.add(&s.chained_runs, 1);
            s.add(&s.chained_blocks, blocks);
        }
        s.add(&s.sim_time_ns, self.cost.transfer_ns(seek, blocks, block_len as u64));
    }

    fn read_at(&self, f: &DiskFile, addr: BlockAddr, count: u32, buf: &mut [u8]) -> StorageResult<()> {
        debug_assert_eq!(buf.len(), count as usize * f.block_len);
        let offset = addr.block as u64 * f.block_len as u64;
        // Short reads past EOF yield zeroes, like a sparse file.
        let mut read = 0usize;
        while read < buf.len() {
            match f.file.read_at(&mut buf[read..], offset + read as u64) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {} // EINTR: retry
                Err(e) => return Err(io_err("pread", e)),
            }
        }
        buf[read..].fill(0);
        Ok(())
    }

    fn sync_dir(&self) -> StorageResult<()> {
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("fsync dir", e))
    }
}

impl BlockDevice for FileDisk {
    fn create_file(&self, file: u32, block_len: usize) -> StorageResult<()> {
        let mut files = self.files.write();
        // Re-creation truncates; a leftover file under the same id with a
        // different block length is replaced.
        if let Some(old) = files.remove(&file) {
            let _ = fs::remove_file(&old.path);
        }
        let path = self.dir.join(seg_file_name(file, block_len));
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create segment file", e))?;
        files.insert(file, Arc::new(DiskFile { file: f, block_len, path }));
        Ok(())
    }

    fn block_len(&self, file: u32) -> StorageResult<usize> {
        Ok(self.file(file)?.block_len)
    }

    fn read_block(&self, addr: BlockAddr, buf: &mut [u8]) -> StorageResult<()> {
        let f = self.file(addr.file)?;
        self.read_at(&f, addr, 1, buf)?;
        self.account(addr, 1, f.block_len, false, false);
        Ok(())
    }

    fn write_block(&self, addr: BlockAddr, buf: &[u8]) -> StorageResult<()> {
        let f = self.file(addr.file)?;
        debug_assert_eq!(buf.len(), f.block_len);
        f.file
            .write_all_at(buf, addr.block as u64 * f.block_len as u64)
            .map_err(|e| io_err("pwrite", e))?;
        self.account(addr, 1, f.block_len, true, false);
        Ok(())
    }

    fn read_chained(&self, addr: BlockAddr, count: u32, buf: &mut [u8]) -> StorageResult<()> {
        let f = self.file(addr.file)?;
        self.read_at(&f, addr, count, buf)?;
        self.account(addr, count as u64, f.block_len, false, true);
        Ok(())
    }

    fn write_chained(&self, addr: BlockAddr, count: u32, buf: &[u8]) -> StorageResult<()> {
        let f = self.file(addr.file)?;
        debug_assert_eq!(buf.len(), count as usize * f.block_len);
        f.file
            .write_all_at(buf, addr.block as u64 * f.block_len as u64)
            .map_err(|e| io_err("pwrite chained", e))?;
        self.account(addr, count as u64, f.block_len, true, true);
        Ok(())
    }

    fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn sync(&self) -> StorageResult<()> {
        let files: Vec<Arc<DiskFile>> = self.files.read().values().cloned().collect();
        for f in files {
            f.file.sync_data().map_err(|e| io_err("fsync segment", e))?;
        }
        self.wal.lock().sync_data().map_err(|e| io_err("fsync wal", e))?;
        self.sync_dir()
    }

    fn write_meta(&self, bytes: &[u8]) -> StorageResult<()> {
        let tmp = self.dir.join("meta.tmp");
        let target = self.dir.join("meta.bin");
        let mut f = File::create(&tmp).map_err(|e| io_err("create meta.tmp", e))?;
        f.write_all(bytes).map_err(|e| io_err("write meta", e))?;
        f.sync_all().map_err(|e| io_err("fsync meta", e))?;
        fs::rename(&tmp, &target).map_err(|e| io_err("rename meta", e))?;
        self.sync_dir()
    }

    fn read_meta(&self) -> StorageResult<Option<Vec<u8>>> {
        match fs::read(self.dir.join("meta.bin")) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read meta", e)),
        }
    }

    fn wal_append(&self, bytes: &[u8]) -> StorageResult<()> {
        let mut wal = self.wal.lock();
        wal.write_all(bytes).map_err(|e| io_err("wal append", e))?;
        wal.sync_data().map_err(|e| io_err("wal fsync", e))?;
        crate::disk::account_wal_append(&self.stats, &self.cost, bytes.len());
        self.arm.lock().last = None;
        Ok(())
    }

    fn wal_contents(&self) -> StorageResult<Vec<u8>> {
        fs::read(self.dir.join("wal.log")).map_err(|e| io_err("read wal", e))
    }

    fn wal_reset(&self) -> StorageResult<()> {
        let wal = self.wal.lock();
        // The handle is append-mode: after set_len(0) the next append
        // lands at offset 0 again.
        wal.set_len(0).map_err(|e| io_err("reset wal", e))?;
        wal.sync_data().map_err(|e| io_err("fsync wal", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TmpDir(PathBuf);

    impl TmpDir {
        fn new(tag: &str) -> TmpDir {
            let d = std::env::temp_dir().join(format!(
                "prima-filedisk-{tag}-{}",
                std::process::id()
            ));
            let _ = fs::remove_dir_all(&d);
            TmpDir(d)
        }
    }

    impl Drop for TmpDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn blocks_round_trip_across_reopen() {
        let tmp = TmpDir::new("roundtrip");
        {
            let d = FileDisk::create(&tmp.0).unwrap();
            d.create_file(0, 512).unwrap();
            d.create_file(3, 4096).unwrap();
            d.write_block(BlockAddr::new(0, 2), &[0xaa; 512]).unwrap();
            let chained: Vec<u8> = (0..2 * 4096).map(|i| (i % 251) as u8).collect();
            d.write_chained(BlockAddr::new(3, 5), 2, &chained).unwrap();
            d.sync().unwrap();
        }
        let d = FileDisk::open(&tmp.0).unwrap();
        assert_eq!(d.block_len(0).unwrap(), 512);
        assert_eq!(d.block_len(3).unwrap(), 4096);
        let mut buf = vec![0u8; 512];
        d.read_block(BlockAddr::new(0, 2), &mut buf).unwrap();
        assert_eq!(buf, vec![0xaa; 512]);
        let mut buf = vec![0u8; 2 * 4096];
        d.read_chained(BlockAddr::new(3, 5), 2, &mut buf).unwrap();
        assert_eq!(buf[0], 0);
        assert_eq!(buf[1], 1);
        // Unwritten blocks read as zeroes (sparse semantics).
        let mut buf = vec![0xffu8; 512];
        d.read_block(BlockAddr::new(0, 100), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn meta_and_wal_areas_survive_reopen() {
        let tmp = TmpDir::new("metawal");
        {
            let d = FileDisk::create(&tmp.0).unwrap();
            d.write_meta(b"checkpoint snapshot").unwrap();
            d.wal_append(b"rec1").unwrap();
            d.wal_append(b"rec2").unwrap();
        }
        let d = FileDisk::open(&tmp.0).unwrap();
        assert_eq!(d.read_meta().unwrap().unwrap(), b"checkpoint snapshot");
        assert_eq!(d.wal_contents().unwrap(), b"rec1rec2");
        d.wal_reset().unwrap();
        assert!(d.wal_contents().unwrap().is_empty());
        let s = d.stats().snapshot();
        assert_eq!(s.wal_forces, 0, "stats are per-instance");
    }

    #[test]
    fn create_clears_previous_database() {
        let tmp = TmpDir::new("clear");
        {
            let d = FileDisk::create(&tmp.0).unwrap();
            d.create_file(0, 512).unwrap();
            d.write_block(BlockAddr::new(0, 0), &[1u8; 512]).unwrap();
            d.write_meta(b"old").unwrap();
        }
        let d = FileDisk::create(&tmp.0).unwrap();
        assert!(d.read_meta().unwrap().is_none());
        assert!(matches!(d.block_len(0), Err(StorageError::UnknownSegment(0))));
    }

    #[test]
    fn lock_file_blocks_foreign_live_pid_but_yields_to_dead_or_own() {
        let tmp = TmpDir::new("lock");
        let d = FileDisk::create(&tmp.0).unwrap();
        // A live foreign pid (pid 1 always exists) blocks open and create.
        fs::write(tmp.0.join("LOCK"), "1\n").unwrap();
        assert!(FileDisk::open(&tmp.0).is_err());
        assert!(FileDisk::create(&tmp.0).is_err());
        // A dead pid is a stale lock from a crash: taken over.
        fs::write(tmp.0.join("LOCK"), format!("{}\n", u32::MAX - 1)).unwrap();
        let reopened = FileDisk::open(&tmp.0).unwrap();
        drop(reopened);
        // Our own pid (the kill-point harness pattern) is also taken over.
        std::mem::forget(FileDisk::open(&tmp.0).unwrap());
        assert!(FileDisk::open(&tmp.0).is_ok());
        drop(d);
    }

    #[test]
    fn wal_append_accounts_one_sequential_transfer() {
        let tmp = TmpDir::new("walacct");
        let d = FileDisk::create(&tmp.0).unwrap();
        d.wal_append(&[0u8; 4096]).unwrap();
        let s = d.stats().snapshot();
        assert_eq!(s.wal_forces, 1);
        assert_eq!(s.wal_bytes, 4096);
        assert_eq!(s.seeks, 1);
        assert!(s.sim_time_ns > 0);
    }
}
