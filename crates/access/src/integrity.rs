//! Referential integrity: system-enforced back-reference maintenance.
//!
//! "Performing update operations, [the access system] is responsible for
//! the automatic maintenance of referential integrity defined by
//! reference attributes (system-enforced integrity). An update operation
//! on a reference attribute thus includes implicit update operations on
//! other atoms to adjust the appropriate back-reference attributes."
//! (Section 3.2; see also the symmetry requirement of Section 2.2.)
//!
//! This module contains the *pure* half of that machinery: computing which
//! back-reference adjustments an attribute change implies
//! ([`backref_ops`]) and applying one adjustment to a target atom's value
//! vector ([`apply_backref`]). The effectful half (reading and rewriting
//! the target atoms) lives in [`crate::access_system`].

use prima_mad::schema::Schema;
use prima_mad::value::{AtomId, Value};

/// One implicit update: add or remove `source` in `target`'s
/// back-reference attribute `attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackRefOp {
    pub target: AtomId,
    pub attr: usize,
    pub add: bool,
    pub source: AtomId,
}

/// Computes the implicit updates caused by changing reference attribute
/// `attr_idx` of atom `source` (type `source.atom_type`) from `old` to
/// `new`. Non-reference attributes yield no ops.
pub fn backref_ops(
    schema: &Schema,
    source: AtomId,
    attr_idx: usize,
    old: &Value,
    new: &Value,
) -> Vec<BackRefOp> {
    let Some(assoc) = schema.association_of(source.atom_type, attr_idx) else {
        return Vec::new();
    };
    let old_ids = old.referenced_ids();
    let new_ids = new.referenced_ids();
    let mut ops = Vec::new();
    for id in &old_ids {
        if !new_ids.contains(id) {
            ops.push(BackRefOp { target: *id, attr: assoc.to.attr, add: false, source });
        }
    }
    for id in &new_ids {
        if !old_ids.contains(id) {
            ops.push(BackRefOp { target: *id, attr: assoc.to.attr, add: true, source });
        }
    }
    ops
}

/// Applies one back-reference adjustment to a target atom's value vector.
/// Handles both single-reference and reference-set back attributes; the
/// operation is idempotent (adding an existing reference or removing an
/// absent one is a no-op).
pub fn apply_backref(values: &mut [Value], op: &BackRefOp) {
    let Some(slot) = values.get_mut(op.attr) else { return };
    match slot {
        Value::RefSet(ids) => {
            if op.add {
                if let Err(pos) = ids.binary_search(&op.source) {
                    ids.insert(pos, op.source);
                }
            } else if let Ok(pos) = ids.binary_search(&op.source) {
                ids.remove(pos);
            }
        }
        Value::Ref(r) => {
            if op.add {
                *r = Some(op.source);
            } else if *r == Some(op.source) {
                *r = None;
            }
        }
        // An unset back attribute materialises on first add; its shape
        // (single vs set) is unknown without the schema, so the access
        // system normalises values before calling (Null never reaches
        // here for reference attributes).
        Value::Null if op.add => *slot = Value::RefSet(vec![op.source]),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::schema::{AtomType, Attribute, AttrType, Cardinality};

    /// solid.sub <-> solid.super (recursive n:m association).
    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_atom_type(AtomType::build(
            "solid",
            vec![
                Attribute::new("solid_id", AttrType::Identifier),
                Attribute::new("sub", AttrType::ref_set("solid", "super", Cardinality::any())),
                Attribute::new("super", AttrType::ref_set("solid", "sub", Cardinality::any())),
                Attribute::new("brep", AttrType::reference("brep", "solid")),
            ],
            vec![],
        ))
        .unwrap();
        s.add_atom_type(AtomType::build(
            "brep",
            vec![
                Attribute::new("brep_id", AttrType::Identifier),
                Attribute::new("solid", AttrType::reference("solid", "brep")),
            ],
            vec![],
        ))
        .unwrap();
        s.validate().unwrap();
        s
    }

    #[test]
    fn adding_references_adds_backrefs() {
        let s = schema();
        let me = AtomId::new(0, 1);
        let kid = AtomId::new(0, 2);
        let ops = backref_ops(
            &s,
            me,
            1, // sub
            &Value::RefSet(vec![]),
            &Value::ref_set(vec![kid]),
        );
        assert_eq!(ops, vec![BackRefOp { target: kid, attr: 2, add: true, source: me }]);
    }

    #[test]
    fn removing_references_removes_backrefs() {
        let s = schema();
        let me = AtomId::new(0, 1);
        let a = AtomId::new(0, 2);
        let b = AtomId::new(0, 3);
        let ops = backref_ops(&s, me, 1, &Value::ref_set(vec![a, b]), &Value::ref_set(vec![b]));
        assert_eq!(ops, vec![BackRefOp { target: a, attr: 2, add: false, source: me }]);
    }

    #[test]
    fn unchanged_references_yield_no_ops() {
        let s = schema();
        let me = AtomId::new(0, 1);
        let a = AtomId::new(0, 2);
        let v = Value::ref_set(vec![a]);
        assert!(backref_ops(&s, me, 1, &v, &v).is_empty());
    }

    #[test]
    fn single_reference_change_swaps_target() {
        let s = schema();
        let me = AtomId::new(0, 1);
        let old_brep = AtomId::new(1, 10);
        let new_brep = AtomId::new(1, 11);
        let ops = backref_ops(
            &s,
            me,
            3, // brep
            &Value::Ref(Some(old_brep)),
            &Value::Ref(Some(new_brep)),
        );
        assert_eq!(ops.len(), 2);
        assert!(ops.contains(&BackRefOp { target: old_brep, attr: 1, add: false, source: me }));
        assert!(ops.contains(&BackRefOp { target: new_brep, attr: 1, add: true, source: me }));
    }

    #[test]
    fn non_reference_attribute_yields_nothing() {
        let s = schema();
        let ops = backref_ops(&s, AtomId::new(0, 1), 0, &Value::Null, &Value::Int(1));
        assert!(ops.is_empty());
    }

    #[test]
    fn apply_to_ref_set_is_idempotent_and_sorted() {
        let me = AtomId::new(0, 1);
        let mut values = vec![Value::Null, Value::ref_set(vec![AtomId::new(0, 5)])];
        let add = BackRefOp { target: AtomId::new(0, 9), attr: 1, add: true, source: me };
        apply_backref(&mut values, &add);
        apply_backref(&mut values, &add);
        assert_eq!(values[1], Value::ref_set(vec![me, AtomId::new(0, 5)]));
        let rm = BackRefOp { target: AtomId::new(0, 9), attr: 1, add: false, source: me };
        apply_backref(&mut values, &rm);
        apply_backref(&mut values, &rm);
        assert_eq!(values[1], Value::ref_set(vec![AtomId::new(0, 5)]));
    }

    #[test]
    fn apply_to_single_ref() {
        let me = AtomId::new(0, 1);
        let mut values = vec![Value::Ref(None)];
        apply_backref(&mut values, &BackRefOp { target: me, attr: 0, add: true, source: me });
        assert_eq!(values[0], Value::Ref(Some(me)));
        // Removing someone else's reference is a no-op.
        let other = AtomId::new(0, 2);
        apply_backref(&mut values, &BackRefOp { target: me, attr: 0, add: false, source: other });
        assert_eq!(values[0], Value::Ref(Some(me)));
        apply_backref(&mut values, &BackRefOp { target: me, attr: 0, add: false, source: me });
        assert_eq!(values[0], Value::Ref(None));
    }

    #[test]
    fn out_of_range_attr_is_ignored() {
        let me = AtomId::new(0, 1);
        let mut values = vec![Value::Null];
        apply_backref(&mut values, &BackRefOp { target: me, attr: 9, add: true, source: me });
        assert_eq!(values, vec![Value::Null]);
    }
}
