//! Property-based tests over kernel invariants.
//!
//! * codec round-trips for arbitrary values;
//! * order-preservation of the key encoding;
//! * back-reference symmetry under arbitrary mutation sequences (the
//!   core invariant of the MAD model: "an association is symmetric in
//!   that the referenced record must contain a back-reference");
//! * sort-order scans equal explicit sorts.

use prima::{Prima, Value};
use prima_mad::codec;
use prima_mad::value::AtomId;
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Real),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::Str),
        (any::<u16>(), any::<u64>()).prop_map(|(t, s)| Value::Id(AtomId::new(t, s))),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Set),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..4)
                .prop_map(Value::Record),
            prop::collection::vec(
                (any::<u16>(), any::<u64>()).prop_map(|(t, s)| AtomId::new(t, s)),
                0..5
            )
            .prop_map(Value::ref_set),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_round_trip(v in arb_value()) {
        let mut buf = Vec::new();
        codec::encode_value(&v, &mut buf);
        let mut pos = 0;
        let back = codec::decode_value(&buf, &mut pos).unwrap();
        prop_assert_eq!(pos, buf.len());
        // Ref sets normalise on construction; everything round-trips
        // exactly.
        prop_assert_eq!(back, v);
    }

    #[test]
    fn key_encoding_preserves_order(a in arb_scalar(), b in arb_scalar()) {
        let mut ka = Vec::new();
        let mut kb = Vec::new();
        codec::encode_key(&a, &mut ka);
        codec::encode_key(&b, &mut kb);
        prop_assert_eq!(ka.cmp(&kb), a.total_cmp(&b),
            "keys must order like values: {:?} vs {:?}", a, b);
    }
}

// ---------------------------------------------------------------------
// Back-reference symmetry under random mutations
// ---------------------------------------------------------------------

const DDL: &str = "
CREATE ATOM_TYPE node
  ( id : IDENTIFIER, n : INTEGER,
    next : SET_OF (REF_TO (node.prev)),
    prev : SET_OF (REF_TO (node.next)) );
";

#[derive(Debug, Clone)]
enum Op {
    Insert,
    Delete(usize),
    Link(usize, usize),
    Unlink(usize, usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(Op::Insert),
            1 => (any::<prop::sample::Index>()).prop_map(|i| Op::Delete(i.index(64))),
            4 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
                .prop_map(|(a, b)| Op::Link(a.index(64), b.index(64))),
            2 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
                .prop_map(|(a, b)| Op::Unlink(a.index(64), b.index(64))),
        ],
        1..60,
    )
}

/// Checks global symmetry: a ∈ b.prev ⇔ b ∈ a.next.
fn assert_symmetric(db: &Prima) {
    let t = db.schema().type_id("node").unwrap();
    let ids = db.access().all_ids(t).unwrap();
    for id in &ids {
        let atom = db.read(*id).unwrap();
        for target in atom.values[2].referenced_ids() {
            let back = db.read(target).unwrap();
            assert!(
                back.values[3].referenced_ids().contains(id),
                "{id} -> {target} lacks back-reference"
            );
        }
        for source in atom.values[3].referenced_ids() {
            let fwd = db.read(source).unwrap();
            assert!(
                fwd.values[2].referenced_ids().contains(id),
                "{id} <- {source} lacks forward reference"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backrefs_stay_symmetric(ops in arb_ops()) {
        let db = Prima::builder().buffer_bytes(4 << 20).build_with_ddl(DDL).unwrap();
        let mut live: Vec<AtomId> = Vec::new();
        let mut n = 0i64;
        for op in ops {
            match op {
                Op::Insert => {
                    n += 1;
                    let id = db.insert("node", &[("n", Value::Int(n))]).unwrap();
                    live.push(id);
                }
                Op::Delete(i) => {
                    if !live.is_empty() {
                        let id = live.remove(i % live.len());
                        db.delete(id).unwrap();
                    }
                }
                Op::Link(a, b) => {
                    if live.len() >= 2 {
                        let from = live[a % live.len()];
                        let to = live[b % live.len()];
                        let atom = db.read(from).unwrap();
                        let mut next = atom.values[2].referenced_ids();
                        if !next.contains(&to) {
                            next.push(to);
                            db.modify(from, &[("next", Value::ref_set(next))]).unwrap();
                        }
                    }
                }
                Op::Unlink(a, b) => {
                    if live.len() >= 2 {
                        let from = live[a % live.len()];
                        let to = live[b % live.len()];
                        let atom = db.read(from).unwrap();
                        let next: Vec<AtomId> = atom.values[2]
                            .referenced_ids()
                            .into_iter()
                            .filter(|x| *x != to)
                            .collect();
                        db.modify(from, &[("next", Value::ref_set(next))]).unwrap();
                    }
                }
            }
        }
        assert_symmetric(&db);
        // And no dangling references to deleted atoms.
        let t = db.schema().type_id("node").unwrap();
        for id in db.access().all_ids(t).unwrap() {
            let atom = db.read(id).unwrap();
            for r in atom.values[2].referenced_ids().into_iter()
                .chain(atom.values[3].referenced_ids()) {
                prop_assert!(db.access().exists(r), "dangling {r}");
            }
        }
    }

    #[test]
    fn sort_order_scan_equals_explicit_sort(values in prop::collection::vec(-1000i64..1000, 1..80)) {
        let db = Prima::builder().build_with_ddl(
            "CREATE ATOM_TYPE item (id: IDENTIFIER, v: INTEGER);"
        ).unwrap();
        for v in &values {
            db.insert("item", &[("v", Value::Int(*v))]).unwrap();
        }
        db.ldl("CREATE SORT ORDER so ON item (v)").unwrap();
        use prima_access::scan::{Scan, SortScan, SortSource};
        use std::ops::Bound;
        let mut scan = SortScan::open(
            db.access(), 0, &[1], prima_access::Ssa::True,
            Bound::Unbounded, Bound::Unbounded,
        ).unwrap();
        prop_assert_eq!(scan.source(), SortSource::SortOrder);
        let got: Vec<i64> = scan.collect_remaining().unwrap()
            .iter().map(|a| a.values[1].as_int().unwrap()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
