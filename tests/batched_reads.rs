//! Equivalence and guard-churn guarantees of the batched atom-read path:
//!
//! * `read_atoms_batch` returns byte-identical atoms — same order, same
//!   projections, same error behaviour — as N calls to `read_atom`,
//!   including mixed-page and mixed-type batches and partition-covered
//!   projections;
//! * molecule assembly produces identical molecule sets under
//!   `AssemblyMode::PerAtom` and `AssemblyMode::Batched` (flat, deep and
//!   recursive structures);
//! * the batched path issues measurably fewer buffer fix calls at
//!   fan-out >= 10 (counter-verified via `BufferStats::detail`).

use prima::{AssemblyMode, Prima, QueryOptions, Value};
use prima_workloads::exec;
use prima_access::AccessError;
use prima_mad::value::AtomId;
use prima_workloads::brep::{self, BrepConfig};

const DDL: &str = "
CREATE ATOM_TYPE part
  ( id : IDENTIFIER, n : INTEGER, name : CHAR_VAR,
    parent : SET_OF (REF_TO (assembly.comps)) );
CREATE ATOM_TYPE assembly
  ( id : IDENTIFIER, n : INTEGER,
    comps : SET_OF (REF_TO (part.parent)) );
";

/// Kernel with `parts` part atoms, each padded so records span many pages.
fn parts_db(parts: usize) -> (Prima, Vec<AtomId>) {
    let db = Prima::builder().buffer_bytes(8 << 20).build_with_ddl(DDL).unwrap();
    let ids: Vec<AtomId> = (0..parts)
        .map(|i| {
            db.insert(
                "part",
                &[
                    ("n", Value::Int(i as i64)),
                    ("name", Value::Str(format!("part-{i:05} padded {}", "x".repeat(i % 40)))),
                ],
            )
            .unwrap()
        })
        .collect();
    (db, ids)
}

#[test]
fn batch_matches_sequential_reads_unprojected() {
    let (db, ids) = parts_db(300);
    // Shuffled-ish order with duplicates, crossing page boundaries.
    let mut order: Vec<AtomId> = Vec::new();
    for i in 0..ids.len() {
        order.push(ids[(i * 97) % ids.len()]);
        if i % 7 == 0 {
            order.push(ids[i]); // duplicates must be preserved positionally
        }
    }
    let batched = db.access().read_atoms_batch(&order, None).unwrap();
    let sequential: Vec<_> =
        order.iter().map(|id| db.access().read_atom(*id, None).unwrap()).collect();
    assert_eq!(batched, sequential);
    // Byte-identical, not merely structurally equal.
    for (b, s) in batched.iter().zip(&sequential) {
        assert_eq!(b.encode(), s.encode());
    }
}

#[test]
fn batch_matches_sequential_reads_projected() {
    let (db, ids) = parts_db(120);
    let proj = [1usize];
    let batched = db.access().read_atoms_batch(&ids, Some(&proj)).unwrap();
    let sequential: Vec<_> =
        ids.iter().map(|id| db.access().read_atom(*id, Some(&proj)).unwrap()).collect();
    assert_eq!(batched, sequential);
    // Projection nulls the unselected attributes in both paths.
    assert!(batched.iter().all(|a| matches!(a.values[2], Value::Null)));
}

#[test]
fn batch_uses_fresh_partitions_like_read_atom() {
    let (db, ids) = parts_db(80);
    let t = db.schema().type_id("part").unwrap();
    db.access().create_partition("p_n", t, vec![0, 1]).unwrap();
    db.access().stats().reset();
    let proj = [1usize];
    let batched = db.access().read_atoms_batch(&ids, Some(&proj)).unwrap();
    let part_reads =
        db.access().stats().partition_reads.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(part_reads as usize, ids.len(), "covered projection reads the partition");
    let sequential: Vec<_> =
        ids.iter().map(|id| db.access().read_atom(*id, Some(&proj)).unwrap()).collect();
    assert_eq!(batched, sequential);
}

#[test]
fn batch_missing_id_matches_sequential_error() {
    let (db, ids) = parts_db(40);
    let victim = ids[17];
    db.delete(victim).unwrap();
    let err = db.access().read_atoms_batch(&ids, None).unwrap_err();
    assert!(
        matches!(err, AccessError::NoSuchAtom(id) if id == victim),
        "batch error must name the first missing atom, got {err}"
    );
    // The tolerant variant reports the hole positionally.
    let opt = db.access().read_atoms_batch_opt(&ids, None).unwrap();
    assert!(opt[17].is_none());
    assert_eq!(opt.iter().filter(|a| a.is_none()).count(), 1);
    for (i, a) in opt.iter().enumerate() {
        if i != 17 {
            assert_eq!(a.as_ref().unwrap(), &db.access().read_atom(ids[i], None).unwrap());
        }
    }
}

#[test]
fn batch_handles_mixed_types_and_empty_input() {
    let (db, part_ids) = parts_db(30);
    let asm = db
        .insert("assembly", &[("n", Value::Int(1)), ("comps", Value::ref_set(part_ids.clone()))])
        .unwrap();
    // Interleave the two atom types (different base record files).
    let mut mixed = Vec::new();
    for id in part_ids.iter().take(10) {
        mixed.push(*id);
        mixed.push(asm);
    }
    let batched = db.access().read_atoms_batch(&mixed, None).unwrap();
    let sequential: Vec<_> =
        mixed.iter().map(|id| db.access().read_atom(*id, None).unwrap()).collect();
    assert_eq!(batched, sequential);
    assert!(db.access().read_atoms_batch(&[], None).unwrap().is_empty());
}

#[test]
fn assembly_modes_agree_on_flat_and_deep_molecules() {
    let db = brep::open_db(16 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_assembly(6, 2, 2)).unwrap();
    for q in [
        "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2",
        "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0",
        "SELECT ALL FROM solid-brep",
    ] {
        let session = db.session();
        let per_atom = session
            .query(q, &QueryOptions::new().assembly(AssemblyMode::PerAtom).traced())
            .unwrap();
        let batched = session
            .query(q, &QueryOptions::new().assembly(AssemblyMode::Batched).traced())
            .unwrap();
        assert_eq!(per_atom.set, batched.set, "molecule sets diverge for {q}");
        assert_eq!(
            per_atom.trace.unwrap().atoms_fetched,
            batched.trace.unwrap().atoms_fetched,
            "fetch accounting diverges for {q}"
        );
    }
}

#[test]
fn assembly_modes_agree_on_recursive_molecules() {
    let db = brep::open_db(16 << 20).unwrap();
    let stats = brep::populate(&db, &BrepConfig::with_assembly(8, 3, 2)).unwrap();
    let root = stats.root_solid_nos[0];
    let q = format!("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = {root}");
    let session = db.session();
    let per_atom = session
        .query(&q, &QueryOptions::new().assembly(AssemblyMode::PerAtom).traced())
        .unwrap();
    let batched = session
        .query(&q, &QueryOptions::new().assembly(AssemblyMode::Batched).traced())
        .unwrap();
    assert_eq!(per_atom.set, batched.set);
    assert_eq!(per_atom.trace.unwrap().atoms_fetched, batched.trace.unwrap().atoms_fetched);
    assert!(batched.set.molecules[0].depth() >= 2, "recursion actually expanded");
}

#[test]
fn batched_assembly_issues_fewer_fix_calls_at_fanout_10() {
    let db = Prima::builder().buffer_bytes(8 << 20).build_with_ddl(DDL).unwrap();
    for a in 0..20 {
        let comps: Vec<AtomId> = (0..10)
            .map(|i| {
                db.insert(
                    "part",
                    &[("n", Value::Int(i)), ("name", Value::Str(format!("p{a}-{i}")))],
                )
                .unwrap()
            })
            .collect();
        db.insert("assembly", &[("n", Value::Int(a)), ("comps", Value::ref_set(comps))])
            .unwrap();
    }
    let q = "SELECT ALL FROM assembly-part";
    let fix_calls_of = |mode: AssemblyMode| {
        let _ = exec::query_with_assembly(&db, q, mode).unwrap(); // warm the buffer
        db.storage().buffer_stats().reset();
        let (set, _) = exec::query_with_assembly(&db, q, mode).unwrap();
        assert_eq!(set.len(), 20);
        db.storage().buffer_stats().detail().fix_calls
    };
    let per_atom = fix_calls_of(AssemblyMode::PerAtom);
    let batched = fix_calls_of(AssemblyMode::Batched);
    assert!(
        batched * 2 <= per_atom,
        "batched path must at least halve fix calls at fan-out 10: {batched} vs {per_atom}"
    );
}
