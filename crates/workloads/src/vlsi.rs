//! VLSI circuit-design workload.
//!
//! Models the structure Section 1 motivates: cells connected by nets
//! through pins. The net↔pin relationship is the archetypal **n:m**: a
//! net touches many pins, a pin may join several nets (power rails).
//! Cells nest recursively (macro cells contain sub-cells) just like the
//! solid assembly of the 3D case.

use prima::{Prima, PrimaResult, Value};
use prima_mad::value::AtomId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// MAD-DDL for the circuit schema.
pub const VLSI_DDL: &str = r#"
CREATE ATOM_TYPE cell
  ( cell_id  : IDENTIFIER,
    cell_no  : INTEGER,
    kind     : CHAR_VAR,
    sub      : SET_OF (REF_TO (cell.super)),
    super    : SET_OF (REF_TO (cell.sub)),
    pins     : SET_OF (REF_TO (pin.cell)) )
KEYS_ARE (cell_no);

CREATE ATOM_TYPE pin
  ( pin_id : IDENTIFIER,
    pin_no : INTEGER,
    x      : REAL,
    y      : REAL,
    cell   : REF_TO (cell.pins),
    nets   : SET_OF (REF_TO (net.pins)) )
KEYS_ARE (pin_no);

CREATE ATOM_TYPE net
  ( net_id : IDENTIFIER,
    net_no : INTEGER,
    signal : CHAR_VAR,
    pins   : SET_OF (REF_TO (pin.nets)) (2,VAR) )
KEYS_ARE (net_no);

DEFINE MOLECULE TYPE cell_tree FROM cell.sub - cell (recursive);
DEFINE MOLECULE TYPE netlist   FROM net - pin - cell;
"#;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct VlsiConfig {
    pub cells: usize,
    /// Pins per cell.
    pub pins_per_cell: usize,
    pub nets: usize,
    /// Pins per net (each net connects this many random pins).
    pub fanout: usize,
    /// Macro-cell hierarchy depth.
    pub hierarchy_depth: usize,
    pub seed: u64,
}

impl Default for VlsiConfig {
    fn default() -> Self {
        VlsiConfig { cells: 20, pins_per_cell: 4, nets: 10, fanout: 3, hierarchy_depth: 0, seed: 7 }
    }
}

/// Generated ids.
#[derive(Debug, Clone, Default)]
pub struct VlsiStats {
    pub cell_ids: Vec<AtomId>,
    pub pin_ids: Vec<AtomId>,
    pub net_ids: Vec<AtomId>,
    pub root_cell_nos: Vec<i64>,
}

/// Builds a PRIMA instance with the circuit schema.
pub fn open_db(buffer_bytes: usize) -> PrimaResult<Prima> {
    Prima::builder().buffer_bytes(buffer_bytes).build_with_ddl(VLSI_DDL)
}

/// Populates the circuit.
pub fn populate(db: &Prima, cfg: &VlsiConfig) -> PrimaResult<VlsiStats> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut s = VlsiStats::default();
    let mut pin_no = 1i64;
    for c in 0..cfg.cells {
        let cell = db.insert(
            "cell",
            &[
                ("cell_no", Value::Int(c as i64 + 1)),
                ("kind", Value::Str(["nand", "nor", "inv", "dff"][c % 4].into())),
            ],
        )?;
        s.cell_ids.push(cell);
        for _ in 0..cfg.pins_per_cell {
            let pin = db.insert(
                "pin",
                &[
                    ("pin_no", Value::Int(pin_no)),
                    ("x", Value::Real(rng.gen_range(0.0..1000.0))),
                    ("y", Value::Real(rng.gen_range(0.0..1000.0))),
                    ("cell", Value::Ref(Some(cell))),
                ],
            )?;
            pin_no += 1;
            s.pin_ids.push(pin);
        }
    }
    for n in 0..cfg.nets {
        // Choose distinct pins for the net.
        let mut chosen = Vec::new();
        while chosen.len() < cfg.fanout.min(s.pin_ids.len()) {
            let p = s.pin_ids[rng.gen_range(0..s.pin_ids.len())];
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        let net = db.insert(
            "net",
            &[
                ("net_no", Value::Int(n as i64 + 1)),
                ("signal", Value::Str(format!("sig{n}"))),
                ("pins", Value::ref_set(chosen)),
            ],
        )?;
        s.net_ids.push(net);
    }
    // Macro hierarchy.
    let mut level = s.cell_ids.clone();
    let mut next_no = cfg.cells as i64 + 1;
    for _ in 0..cfg.hierarchy_depth {
        if level.len() <= 1 {
            break;
        }
        let mut next = Vec::new();
        for chunk in level.chunks(4) {
            let c = db.insert(
                "cell",
                &[
                    ("cell_no", Value::Int(next_no)),
                    ("kind", Value::Str("macro".into())),
                    ("sub", Value::ref_set(chunk.to_vec())),
                ],
            )?;
            next_no += 1;
            s.cell_ids.push(c);
            next.push(c);
        }
        level = next;
    }
    s.root_cell_nos = if cfg.hierarchy_depth > 0 {
        level
            .iter()
            .map(|id| db.read(*id).map(|a| a.values[1].as_int().unwrap_or(0)))
            .collect::<PrimaResult<_>>()?
    } else {
        Vec::new()
    };
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlist_molecule_crosses_nm_relationship() {
        let db = open_db(8 << 20).unwrap();
        let cfg = VlsiConfig::default();
        populate(&db, &cfg).unwrap();
        let set = crate::exec::query(&db, "SELECT ALL FROM net-pin-cell WHERE net_no = 1").unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.atoms_of("pin").len(), cfg.fanout);
        assert_eq!(set.atoms_of("cell").len(), cfg.fanout, "one cell per pin");
    }

    #[test]
    fn symmetric_traversal_pin_to_nets() {
        let db = open_db(8 << 20).unwrap();
        populate(&db, &VlsiConfig::default()).unwrap();
        // Inverse direction: from pins to the nets they join.
        let set = crate::exec::query(&db, "SELECT ALL FROM pin-net WHERE pin_no = 1").unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.atoms_of("pin").len(), 1);
    }

    #[test]
    fn macro_hierarchy_queryable_recursively() {
        let db = open_db(8 << 20).unwrap();
        let cfg = VlsiConfig { cells: 8, hierarchy_depth: 2, ..Default::default() };
        let s = populate(&db, &cfg).unwrap();
        assert!(!s.root_cell_nos.is_empty());
        let set = crate::exec::query(&db, &format!(
                "SELECT ALL FROM cell_tree WHERE cell_tree (0).cell_no = {}",
                s.root_cell_nos[0]
            ))
            .unwrap();
        assert_eq!(set.len(), 1);
        assert!(set.molecules[0].atom_count() > 1);
    }
}
