//! E-LDL: "Such measures only serve to improve performance — they are …
//! not visible to the application referencing the MAD interface."
//! Every tuning structure changes the physical trace but never the
//! answer; structures can be created and dropped at any time.

use prima::datasys::RootAccess;
use prima_workloads::exec;
use prima_workloads::brep::{self, BrepConfig};
use prima_workloads::map::{self, MapConfig};

#[test]
fn access_path_changes_trace_not_answer() {
    let db = map::open_db(16 << 20).unwrap();
    map::populate(&db, &MapConfig { sheets: 1, grid: 10, seed: 3 }).unwrap();
    let q = "SELECT ALL FROM region WHERE area >= 100.0";
    let (before, t_before) = exec::query_traced(&db, q).unwrap();
    assert_eq!(t_before.root_access, RootAccess::TypeScan);
    db.ldl("CREATE ACCESS PATH ap_area ON region (area)").unwrap();
    let (after, t_after) = exec::query_traced(&db, q).unwrap();
    assert!(
        matches!(t_after.root_access, RootAccess::AccessPath { .. }),
        "got {:?}",
        t_after.root_access
    );
    assert_eq!(before.molecules, after.molecules);
    // Drop it again: back to the scan, same answer.
    db.ldl("DROP STRUCTURE ap_area").unwrap();
    let (dropped, t_dropped) = exec::query_traced(&db, q).unwrap();
    assert_eq!(t_dropped.root_access, RootAccess::TypeScan);
    assert_eq!(before.molecules, dropped.molecules);
}

#[test]
fn partition_changes_trace_not_answer() {
    let db = map::open_db(16 << 20).unwrap();
    map::populate(&db, &MapConfig { sheets: 1, grid: 8, seed: 3 }).unwrap();
    let q = "SELECT region_no FROM region WHERE land_use = 'forest'";
    let before = exec::query(&db, q).unwrap();
    db.ldl("CREATE PARTITION p ON region (region_no, land_use)").unwrap();
    let (after, trace) = exec::query_traced(&db, q).unwrap();
    assert!(matches!(trace.root_access, RootAccess::PartitionScan { .. }));
    assert_eq!(before.molecules, after.molecules);
}

#[test]
fn cluster_changes_trace_not_answer() {
    let db = brep::open_db(16 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(6)).unwrap();
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 4";
    let before = exec::query(&db, q).unwrap();
    db.ldl("CREATE ATOM_CLUSTER cl ON brep (faces, edges, points) PAGESIZE 2K").unwrap();
    let (after, trace) = exec::query_traced(&db, q).unwrap();
    assert_eq!(trace.cluster_used.as_deref(), Some("cl"));
    assert_eq!(before.molecules, after.molecules);
}

#[test]
fn controlled_redundancy_two_sort_orders() {
    // "e.g. two different sort orders for the same object".
    let db = map::open_db(16 << 20).unwrap();
    map::populate(&db, &MapConfig { sheets: 1, grid: 6, seed: 3 }).unwrap();
    db.ldl(
        "CREATE SORT ORDER so_area ON region (area);
         CREATE SORT ORDER so_no ON region (region_no)",
    )
    .unwrap();
    let so1 = db.access().sort_order("so_area").unwrap();
    let so2 = db.access().sort_order("so_no").unwrap();
    assert_eq!(so1.len(), 36);
    assert_eq!(so2.len(), 36);
    // Each atom now has 2 redundant copies + 1 primary record (the n:m
    // atom↔record mapping of Section 3.2).
    let t = db.schema().type_id("region").unwrap();
    let some = db.access().all_ids(t).unwrap()[0];
    // both copies fresh
    let s1 = db.access().structure_id("so_area").unwrap();
    let s2 = db.access().structure_id("so_no").unwrap();
    assert!(!db.access().deferred_stale(some, s1));
    assert!(!db.access().deferred_stale(some, s2));
}

#[test]
fn structures_maintained_across_inserts_and_deletes() {
    let db = map::open_db(16 << 20).unwrap();
    map::populate(&db, &MapConfig { sheets: 1, grid: 4, seed: 3 }).unwrap();
    db.ldl(
        "CREATE ACCESS PATH ap ON region (region_no);
         CREATE SORT ORDER so ON region (area);
         CREATE PARTITION p ON region (region_no, land_use)",
    )
    .unwrap();
    // New atom appears in every structure.
    let sheet = exec::query(&db, "SELECT ALL FROM sheet WHERE sheet_no = 1").unwrap().molecules[0]
        .root
        .atom
        .id;
    db.insert(
        "region",
        &[
            ("region_no", prima::Value::Int(999)),
            ("land_use", prima::Value::Str("park".into())),
            ("area", prima::Value::Real(7.0)),
            ("sheet", prima::Value::Ref(Some(sheet))),
        ],
    )
    .unwrap();
    let (set, trace) = exec::query_traced(&db, "SELECT ALL FROM region WHERE region_no = 999").unwrap();
    assert!(matches!(trace.root_access, RootAccess::AccessPath { .. } | RootAccess::KeyLookup { .. }));
    assert_eq!(set.len(), 1);
    assert_eq!(db.access().sort_order("so").unwrap().len(), 17);
    // Delete removes it everywhere.
    exec::execute(&db, "DELETE FROM region WHERE region_no = 999").unwrap();
    let set = exec::query(&db, "SELECT ALL FROM region WHERE region_no = 999").unwrap();
    assert!(set.is_empty());
    assert_eq!(db.access().sort_order("so").unwrap().len(), 16);
}

#[test]
fn duplicate_structure_name_rejected() {
    let db = map::open_db(8 << 20).unwrap();
    map::populate(&db, &MapConfig::default()).unwrap();
    db.ldl("CREATE ACCESS PATH dup ON region (region_no)").unwrap();
    assert!(db.ldl("CREATE SORT ORDER dup ON region (area)").is_err());
    assert!(db.ldl("DROP STRUCTURE nonexistent").is_err());
}
