//! Fixture: exactly one `lockrank` finding — a rank inversion.
//! Not compiled; lexed and analysed by `tests/lint_rules.rs`.

pub struct S {
    // lockrank: walio.0
    io: Mutex<()>,
    // lockrank: txn.0
    gate: Mutex<()>,
}

impl S {
    pub fn inverted(&self) {
        let _io = self.io.lock();
        // txn (20) acquired while holding walio (80): inversion.
        let _g = self.gate.lock();
    }
}
