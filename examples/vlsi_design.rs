//! VLSI example: n:m netlists, multi-dimensional access paths, and
//! semantic parallelism on a circuit database.
//!
//! ```sh
//! cargo run --example vlsi_design
//! ```

use prima::{PrimaResult, QueryOptions, Value as PValue};
use prima_workloads::exec;
use prima_access::multidim::DimRange;
use prima_access::scan::{MultidimScan, Scan};
use prima_access::Ssa;
use prima_mad::Value;
use prima_workloads::vlsi::{self, VlsiConfig};
use std::ops::Bound;

fn main() -> PrimaResult<()> {
    let db = vlsi::open_db(16 << 20)?;
    let cfg = VlsiConfig {
        cells: 200,
        pins_per_cell: 4,
        nets: 150,
        fanout: 4,
        hierarchy_depth: 3,
        seed: 99,
    };
    let stats = vlsi::populate(&db, &cfg)?;
    println!(
        "circuit: {} cells, {} pins, {} nets",
        stats.cell_ids.len(),
        stats.pin_ids.len(),
        stats.net_ids.len()
    );

    // Netlist molecule: net -> pins -> cells (vertical access over n:m),
    // prepared once and bound per net — the shape an interactive design
    // tool uses against the kernel.
    let session = db.session();
    let mut net_q = session.prepare("SELECT ALL FROM netlist WHERE net_no = ?")?;
    net_q.bind(&[PValue::Int(42)])?;
    let set = net_q.query(&QueryOptions::default())?.set;
    println!(
        "net 42 connects {} pins on {} cells",
        set.atoms_of("pin").len(),
        set.atoms_of("cell").len()
    );

    // Symmetric traversal: which nets does pin 17 join?
    let set = exec::query(&db, "SELECT ALL FROM pin-net WHERE pin_no = 17")?;
    println!("pin 17 joins {} net(s) (symmetric direction)", set.atoms_of("net").len());

    // LDL: a multidimensional access path over pin coordinates.
    db.ldl("CREATE MULTIDIM ACCESS PATH gf_xy ON pin (x, y)")?;
    let gx = db.access().grid_index("gf_xy").expect("just created");
    let enc = |v: f64| {
        let mut k = Vec::new();
        prima_mad::codec::encode_key(&Value::Real(v), &mut k);
        k
    };
    // Region query: pins in the window x ∈ [100,300), y ∈ [0,500), x
    // ascending, y descending — per-key directions as in Section 3.2.
    let ranges = vec![
        DimRange { start: Bound::Included(enc(100.0)), stop: Bound::Excluded(enc(300.0)), descending: false },
        DimRange { start: Bound::Included(enc(0.0)), stop: Bound::Excluded(enc(500.0)), descending: true },
    ];
    let mut scan = MultidimScan::open(db.access(), &gx, Ssa::True, &ranges)?;
    let hits = scan.collect_remaining()?;
    println!("window query via grid file: {} pins", hits.len());

    // Recursive macro hierarchy.
    let root = stats.root_cell_nos[0];
    let set = exec::query(&db, &format!(
        "SELECT ALL FROM cell_tree WHERE cell_tree (0).cell_no = {root}"
    ))?;
    println!(
        "macro cell {root}: {} cells in the expansion, {} levels",
        set.molecules[0].atom_count(),
        set.molecules[0].depth()
    );

    // Semantic parallelism: construct all netlist molecules, serially vs
    // with 4 workers (QueryOptions::threads); results must agree.
    let q = "SELECT ALL FROM netlist WHERE net_no > 0";
    let t0 = std::time::Instant::now();
    let serial = session.query(q, &QueryOptions::default())?.set;
    let t_serial = t0.elapsed();
    let t0 = std::time::Instant::now();
    let parallel = session.query(q, &QueryOptions::new().threads(4))?.set;
    let t_par = t0.elapsed();
    assert_eq!(serial.len(), parallel.len());
    println!(
        "semantic parallelism: {} molecules; serial {:?}, 4 DUs {:?}",
        serial.len(),
        t_serial,
        t_par
    );
    Ok(())
}
