//! MAD-DDL: the data definition language of Fig. 2.3.
//!
//! Supports the constructs the paper's schema uses verbatim:
//!
//! ```text
//! CREATE ATOM_TYPE solid
//!   ( solid_id   : IDENTIFIER,
//!     solid_no   : INTEGER,
//!     description: CHAR_VAR,
//!     sub        : SET_OF (REF_TO (solid.super)),
//!     super      : SET_OF (REF_TO (solid.sub)),
//!     brep       : REF_TO (brep.solid) )
//! KEYS_ARE (solid_no)
//!
//! DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (recursive)
//! ```
//!
//! plus `RECORD … END`, `SET_OF`/`LIST_OF` with cardinality restrictions
//! `(n,VAR)` / `(n,m)`, `CHAR(n)`, `ARRAY(n) OF t`, `BOOLEAN` and the
//! domain shorthand `HULL_DIM(n)` of Fig. 2.3 (an n-vector of REALs).

use crate::mql::lexer::{lex, ParseError, TokenKind};
use crate::mql::parser::Parser;
use crate::schema::{AtomType, Attribute, AttrType, Cardinality, MoleculeType, RefTarget, Schema};

/// One parsed DDL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlStatement {
    CreateAtomType(AtomType),
    DefineMoleculeType(MoleculeType),
}

/// Parses a single DDL statement.
pub fn parse_ddl(src: &str) -> Result<DdlStatement, ParseError> {
    let run = || -> Result<DdlStatement, ParseError> {
        let tokens = lex(src)?;
        let mut p = DdlParser { p: Parser { tokens, pos: 0, params: Vec::new() } };
        let stmt = p.statement()?;
        p.p.expect_eof()?;
        Ok(stmt)
    };
    run().map_err(|e| e.locate(src))
}

/// Parses a whole DDL script (statements separated by semicolons or just
/// juxtaposed) and applies it to a schema.
pub fn parse_script(src: &str) -> Result<Vec<DdlStatement>, ParseError> {
    let run = || -> Result<Vec<DdlStatement>, ParseError> {
        let tokens = lex(src)?;
        let mut p = DdlParser { p: Parser { tokens, pos: 0, params: Vec::new() } };
        let mut out = Vec::new();
        loop {
            while p.p.eat(&TokenKind::Semicolon) {}
            if p.p.peek() == &TokenKind::Eof {
                break;
            }
            out.push(p.statement()?);
        }
        Ok(out)
    };
    run().map_err(|e| e.locate(src))
}

/// Parses a script and loads it into `schema` (types first, then molecule
/// types), validating at the end.
pub fn load_script(schema: &mut Schema, src: &str) -> Result<(), DdlError> {
    let stmts = parse_script(src).map_err(DdlError::Parse)?;
    // Atom types first (any order within the script is fine because
    // references are resolved at validate()).
    for s in &stmts {
        if let DdlStatement::CreateAtomType(at) = s {
            schema.add_atom_type(at.clone()).map_err(DdlError::Schema)?;
        }
    }
    schema.validate().map_err(DdlError::Schema)?;
    for s in stmts {
        if let DdlStatement::DefineMoleculeType(mt) = s {
            schema.define_molecule_type(mt).map_err(DdlError::Schema)?;
        }
    }
    Ok(())
}

/// Errors from loading a DDL script.
#[derive(Debug)]
pub enum DdlError {
    Parse(ParseError),
    Schema(crate::schema::SchemaError),
}

impl std::fmt::Display for DdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DdlError::Parse(e) => write!(f, "DDL parse error: {e}"),
            DdlError::Schema(e) => write!(f, "DDL schema error: {e}"),
        }
    }
}

impl std::error::Error for DdlError {}

struct DdlParser {
    p: Parser,
}

impl DdlParser {
    fn statement(&mut self) -> Result<DdlStatement, ParseError> {
        if self.p.eat_kw("create") {
            self.p.expect_kw("atom_type")?;
            return self.create_atom_type();
        }
        if self.p.eat_kw("define") {
            self.p.expect_kw("molecule")?;
            self.p.expect_kw("type")?;
            let name = self.p.ident()?;
            self.p.expect_kw("from")?;
            let graph = self.p.from_structure()?;
            return Ok(DdlStatement::DefineMoleculeType(MoleculeType::new(name, graph)));
        }
        Err(ParseError::new(
            format!("expected CREATE ATOM_TYPE or DEFINE MOLECULE TYPE, found '{}'", self.p.peek()),
            self.p.offset(),
        ))
    }

    fn create_atom_type(&mut self) -> Result<DdlStatement, ParseError> {
        let name = self.p.ident()?;
        self.p.expect(TokenKind::LParen)?;
        let mut attributes = Vec::new();
        loop {
            let attr_name = self.p.ident()?;
            self.p.expect(TokenKind::Colon)?;
            let ty = self.attr_type()?;
            attributes.push(Attribute::new(attr_name, ty));
            if !self.p.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.p.expect(TokenKind::RParen)?;
        let mut keys = Vec::new();
        if self.p.eat_kw("keys_are") {
            self.p.expect(TokenKind::LParen)?;
            keys.push(self.p.ident()?);
            while self.p.eat(&TokenKind::Comma) {
                keys.push(self.p.ident()?);
            }
            self.p.expect(TokenKind::RParen)?;
        }
        Ok(DdlStatement::CreateAtomType(AtomType::build(name, attributes, keys)))
    }

    fn attr_type(&mut self) -> Result<AttrType, ParseError> {
        let kw = self.p.ident()?;
        let kw_lc = kw.to_ascii_lowercase();
        match kw_lc.as_str() {
            "identifier" => Ok(AttrType::Identifier),
            "integer" | "int" => Ok(AttrType::Integer),
            "real" => Ok(AttrType::Real),
            "boolean" => Ok(AttrType::Boolean),
            "char_var" => Ok(AttrType::CharVar),
            "char" => {
                self.p.expect(TokenKind::LParen)?;
                let n = self.int()?;
                self.p.expect(TokenKind::RParen)?;
                Ok(AttrType::Char(n as usize))
            }
            "ref_to" => {
                self.p.expect(TokenKind::LParen)?;
                let target = self.ref_target()?;
                self.p.expect(TokenKind::RParen)?;
                Ok(AttrType::Ref(target))
            }
            "set_of" | "list_of" => {
                self.p.expect(TokenKind::LParen)?;
                // Either SET_OF (REF_TO (t.a)) or SET_OF (elem_type).
                let inner_is_ref = self.p.peek().is_kw("ref_to");
                if inner_is_ref {
                    self.p.bump();
                    self.p.expect(TokenKind::LParen)?;
                    let target = self.ref_target()?;
                    self.p.expect(TokenKind::RParen)?;
                    self.p.expect(TokenKind::RParen)?;
                    let card = self.optional_cardinality()?;
                    if kw_lc == "set_of" {
                        Ok(AttrType::RefSet(target, card))
                    } else {
                        // Reference lists are modelled as sets (the paper
                        // uses sets for all associations).
                        Ok(AttrType::RefSet(target, card))
                    }
                } else {
                    let elem = self.attr_type()?;
                    self.p.expect(TokenKind::RParen)?;
                    let card = self.optional_cardinality()?;
                    if kw_lc == "set_of" {
                        Ok(AttrType::SetOf(Box::new(elem), card))
                    } else {
                        Ok(AttrType::ListOf(Box::new(elem), card))
                    }
                }
            }
            "record" => {
                let mut fields = Vec::new();
                loop {
                    // name {, name} : type
                    let mut names = vec![self.p.ident()?];
                    while self.p.eat(&TokenKind::Comma) {
                        names.push(self.p.ident()?);
                    }
                    self.p.expect(TokenKind::Colon)?;
                    let ty = self.attr_type()?;
                    for n in names {
                        fields.push((n, ty.clone()));
                    }
                    // Paper ends groups with '.' or just END; accept both
                    // plus ',' continuation.
                    let _ = self.p.eat(&TokenKind::Dot) || self.p.eat(&TokenKind::Comma);
                    if self.p.eat_kw("end") {
                        break;
                    }
                }
                Ok(AttrType::Record(fields))
            }
            "array" => {
                self.p.expect(TokenKind::LParen)?;
                let n = self.int()?;
                self.p.expect(TokenKind::RParen)?;
                self.p.expect_kw("of")?;
                let elem = self.attr_type()?;
                Ok(AttrType::Array(Box::new(elem), n as usize))
            }
            // Domain shorthand of Fig. 2.3: hull : HULL_DIM(3).
            "hull_dim" => {
                self.p.expect(TokenKind::LParen)?;
                let n = self.int()?;
                self.p.expect(TokenKind::RParen)?;
                Ok(AttrType::Array(Box::new(AttrType::Real), n as usize))
            }
            other => Err(ParseError::new(
                format!("unknown attribute type '{other}'"),
                self.p.offset(),
            )),
        }
    }

    fn ref_target(&mut self) -> Result<RefTarget, ParseError> {
        let ty = self.p.ident()?;
        self.p.expect(TokenKind::Dot)?;
        let attr = self.p.ident()?;
        Ok(RefTarget { type_name: ty, attr_name: attr })
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.p.bump() {
            TokenKind::Int(i) => Ok(i),
            other => Err(ParseError::new(
                format!("expected integer, found '{other}'"),
                self.p.offset(),
            )),
        }
    }

    /// `(n,VAR)` or `(n,m)` after a repeating-group type; absent means
    /// unrestricted.
    fn optional_cardinality(&mut self) -> Result<Cardinality, ParseError> {
        // Lookahead: '(' INT ',' …
        let save = self.p.pos;
        if self.p.eat(&TokenKind::LParen) {
            if let TokenKind::Int(min) = self.p.peek().clone() {
                self.p.bump();
                if self.p.eat(&TokenKind::Comma) {
                    let card = if self.p.eat_kw("var") {
                        Cardinality::var(min as u32)
                    } else {
                        let max = self.int()?;
                        Cardinality::range(min as u32, max as u32)
                    };
                    self.p.expect(TokenKind::RParen)?;
                    return Ok(card);
                }
            }
            self.p.pos = save;
        }
        Ok(Cardinality::any())
    }
}

/// The verbatim DDL of Fig. 2.3 (solid representation), exposed for tests
/// and examples.
pub const FIG_2_3_DDL: &str = r#"
CREATE ATOM_TYPE solid
  ( solid_id    : IDENTIFIER,
    solid_no    : INTEGER,
    description : CHAR_VAR,
    sub         : SET_OF (REF_TO (solid.super)),
    super       : SET_OF (REF_TO (solid.sub)),
    brep        : REF_TO (brep.solid) )
KEYS_ARE (solid_no);

CREATE ATOM_TYPE brep
  ( brep_id : IDENTIFIER,
    brep_no : INTEGER,
    hull    : HULL_DIM(3),
    solid   : REF_TO (solid.brep),
    faces   : SET_OF (REF_TO (face.brep)) (4,VAR),
    edges   : SET_OF (REF_TO (edge.brep)) (6,VAR),
    points  : SET_OF (REF_TO (point.brep)) (4,VAR) )
KEYS_ARE (brep_no);

CREATE ATOM_TYPE face
  ( face_id    : IDENTIFIER,
    square_dim : REAL,
    border     : SET_OF (REF_TO (edge.face)) (3,VAR),
    crosspoint : SET_OF (REF_TO (point.face)) (3,VAR),
    brep       : REF_TO (brep.faces) );

CREATE ATOM_TYPE edge
  ( edge_id  : IDENTIFIER,
    length   : REAL,
    boundary : SET_OF (REF_TO (point.line)) (2,VAR),
    face     : SET_OF (REF_TO (face.border)) (2,VAR),
    brep     : REF_TO (brep.edges) );

CREATE ATOM_TYPE point
  ( point_id  : IDENTIFIER,
    placement : RECORD
                  x_coord, y_coord, z_coord : REAL
                END,
    line      : SET_OF (REF_TO (edge.boundary)) (1,VAR),
    face      : SET_OF (REF_TO (face.crosspoint)) (1,VAR),
    brep      : REF_TO (brep.points) );

DEFINE MOLECULE TYPE edge_obj  FROM edge - point;
DEFINE MOLECULE TYPE face_obj  FROM face - edge_obj;
DEFINE MOLECULE TYPE brep_obj  FROM brep - face_obj;
DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (recursive);
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_atom_type() {
        let s = parse_ddl(
            "CREATE ATOM_TYPE solid (solid_id: IDENTIFIER, solid_no: INTEGER) KEYS_ARE (solid_no)",
        )
        .unwrap();
        let DdlStatement::CreateAtomType(at) = s else { panic!() };
        assert_eq!(at.name, "solid");
        assert_eq!(at.attributes.len(), 2);
        assert_eq!(at.keys, vec!["solid_no".to_string()]);
    }

    #[test]
    fn parse_ref_types_with_cardinality() {
        let s = parse_ddl(
            "CREATE ATOM_TYPE edge (edge_id: IDENTIFIER, boundary: SET_OF (REF_TO (point.line)) (2,VAR), brep: REF_TO (brep.edges))",
        )
        .unwrap();
        let DdlStatement::CreateAtomType(at) = s else { panic!() };
        match &at.attributes[1].ty {
            AttrType::RefSet(t, c) => {
                assert_eq!(t.type_name, "point");
                assert_eq!(t.attr_name, "line");
                assert_eq!(*c, Cardinality::var(2));
            }
            other => panic!("unexpected type {other:?}"),
        }
        assert!(matches!(&at.attributes[2].ty, AttrType::Ref(_)));
    }

    #[test]
    fn parse_record_type() {
        let s = parse_ddl(
            "CREATE ATOM_TYPE point (point_id: IDENTIFIER, placement: RECORD x_coord, y_coord, z_coord: REAL END)",
        )
        .unwrap();
        let DdlStatement::CreateAtomType(at) = s else { panic!() };
        match &at.attributes[1].ty {
            AttrType::Record(fields) => {
                assert_eq!(fields.len(), 3);
                assert_eq!(fields[0].0, "x_coord");
                assert!(matches!(fields[2].1, AttrType::Real));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_molecule_type_definitions() {
        let s = parse_ddl("DEFINE MOLECULE TYPE brep_obj FROM brep - face_obj").unwrap();
        let DdlStatement::DefineMoleculeType(mt) = s else { panic!() };
        assert_eq!(mt.name, "brep_obj");
        assert_eq!(mt.graph.component_names(), vec!["brep", "face_obj"]);
    }

    #[test]
    fn fig_2_3_loads_and_validates() {
        let mut schema = Schema::new();
        load_script(&mut schema, FIG_2_3_DDL).unwrap();
        assert_eq!(schema.atom_types().len(), 5);
        assert!(schema.molecule_type("piece_list").is_some());
        assert!(schema.molecule_type("brep_obj").is_some());
        // The solid type has the recursive n:m association.
        let solid = schema.type_by_name("solid").unwrap();
        assert!(solid.attribute("sub").unwrap().ty.is_ref_set());
        // hull shorthand became ARRAY(3) OF REAL.
        let brep = schema.type_by_name("brep").unwrap();
        assert_eq!(
            brep.attribute("hull").unwrap().ty,
            AttrType::Array(Box::new(AttrType::Real), 3)
        );
        // Cardinality restrictions parsed.
        let face = schema.type_by_name("face").unwrap();
        match &face.attribute("border").unwrap().ty {
            AttrType::RefSet(_, c) => assert_eq!(*c, Cardinality::var(3)),
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_type_keyword_rejected() {
        assert!(parse_ddl("CREATE ATOM_TYPE x (a: FLOAT32)").is_err());
    }

    #[test]
    fn script_with_multiple_statements() {
        let stmts = parse_script(
            "CREATE ATOM_TYPE a (id: IDENTIFIER); CREATE ATOM_TYPE b (id: IDENTIFIER);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn asymmetric_script_rejected_at_load() {
        let mut schema = Schema::new();
        let err = load_script(
            &mut schema,
            "CREATE ATOM_TYPE a (id: IDENTIFIER, b_ref: REF_TO (b.missing));
             CREATE ATOM_TYPE b (id: IDENTIFIER);",
        )
        .unwrap_err();
        assert!(matches!(err, DdlError::Schema(_)));
    }
}
