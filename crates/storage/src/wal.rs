//! Write-ahead log.
//!
//! The paper defers media and crash recovery to a later report; this
//! module supplies the piece every kernel since the systems of the 1970s
//! has carried between Fig. 3.1's storage system and the devices: an
//! append-only, LSN-stamped log with
//!
//! * **physical redo** — full page images captured when an updater unfixes
//!   a dirty page ([`crate::buffer::BufferManager`] stamps the frame's
//!   `recovery_lsn`);
//! * **logical undo** — opaque payloads the transaction layer serialises
//!   (inverse atom operations), tagged with their top-level transaction;
//! * **transaction brackets** — begin / commit / abort records; commit
//!   *forces* the log, which is what makes `Session::commit` durable;
//! * **group append** — records accumulate in an in-process buffer and
//!   reach the device only on a force, one sequential
//!   [`BlockDevice::wal_append`] per force. Everything not yet forced is
//!   lost in a crash — exactly the contract recovery assumes;
//! * **cross-session group commit** — [`Wal::commit`] is the commit
//!   durability point. A committer appends its `TxnCommit` record and
//!   then either *leads* (performs the device force itself, lingering up
//!   to [`GroupCommitConfig::max_wait`] for other in-flight committers'
//!   records, up to [`GroupCommitConfig::max_batch`] commits) or
//!   *follows* (parks on a condvar until `flushed_lsn` covers its commit
//!   LSN). Either way the ack invariant holds: `commit` returns `Ok`
//!   only after a device append covering the caller's `TxnCommit` record
//!   returned `Ok` — so N concurrent committers share one fsync instead
//!   of paying N.
//!
//! A force never holds the group buffer's mutex across device I/O: the
//! pending batch is swapped out under the lock, written outside it, and
//! `flushed` is published after — appenders on other sessions are never
//! stalled behind an in-flight fsync. File order still equals LSN order
//! because batch swaps are serialised by a dedicated I/O lock.
//!
//! The write-ahead invariant is enforced at the buffer: no dirty page
//! reaches the device while its `recovery_lsn` exceeds
//! [`Wal::flushed_lsn`]. The transaction layer keeps the companion
//! invariant that a statement's undo record is appended *before* any of
//! its page images, so a forced prefix never contains a redo without the
//! matching undo.
//!
//! On-device format: a sequence of `[u32 body_len][u32 crc][body]`
//! records; `body = [u8 kind][u64 lsn][fields]`. Replay stops at the
//! first truncated or corrupt record — the torn tail of a crash.

use crate::bytes::{le_u32, le_u64};
use crate::disk::BlockDevice;
use crate::error::{StorageError, StorageResult};
use crate::page::PageId;
use parking_lot::{rank, Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Log sequence number. `0` means "none"; real records start at 1.
pub type Lsn = u64;

const KIND_PAGE_IMAGE: u8 = 1;
const KIND_TXN_BEGIN: u8 = 2;
const KIND_TXN_COMMIT: u8 = 3;
const KIND_TXN_ABORT: u8 = 4;
const KIND_UNDO: u8 = 5;
const KIND_CHECKPOINT: u8 = 6;

/// Tuning knobs for cross-session group commit (see [`Wal::commit`]).
///
/// Both knobs bound how long a commit leader lingers for company before
/// forcing: it writes as soon as every transaction currently inside
/// `commit` has its record in the batch, `max_batch` commits are
/// buffered, or `max_wait` elapses — whichever comes first. A lone
/// committer never lingers at all, so single-session commit latency is
/// unchanged from force-per-commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Longest a leader waits for further committers' records before
    /// forcing, and the bound on one follower park (followers re-check
    /// `flushed_lsn` and the leader flag on every wakeup, so a missed
    /// notify costs at most one `max_wait`).
    pub max_wait: Duration,
    /// Most commit records one device force may cover. `<= 1` disables
    /// grouping entirely: every commit forces for itself, the pre-group
    /// behaviour.
    pub max_batch: usize,
}

impl Default for GroupCommitConfig {
    /// Grouping on: up to 64 commits per force, 500 µs leader linger.
    fn default() -> Self {
        GroupCommitConfig { max_wait: Duration::from_micros(500), max_batch: 64 }
    }
}

impl GroupCommitConfig {
    /// Classic force-per-commit: every committer pays its own device
    /// append. The baseline the group-commit bench compares against, and
    /// the escape hatch for workloads that want minimum commit latency
    /// over throughput.
    pub fn force_each() -> Self {
        GroupCommitConfig { max_wait: Duration::ZERO, max_batch: 1 }
    }

    fn grouping(&self) -> bool {
        self.max_batch > 1
    }
}

/// A record as appended (borrowed payloads; the LSN is assigned by
/// [`Wal::append`]).
#[derive(Debug)]
pub enum WalPayload<'a> {
    /// Full after-image of one page (physical redo).
    PageImage { page: PageId, bytes: &'a [u8] },
    /// Top-level transaction started.
    TxnBegin { txn: u64 },
    /// Top-level transaction committed (the append is followed by a
    /// force).
    TxnCommit { txn: u64 },
    /// Top-level transaction rolled back in-process (its undo has been
    /// applied; recovery must not undo it again *if* this record made it
    /// to the device).
    TxnAbort { txn: u64 },
    /// Logical undo payload, opaque to the storage layer.
    Undo { txn: u64, payload: &'a [u8] },
    /// Checkpoint marker (diagnostic; the log is truncated right after).
    Checkpoint,
}

/// A decoded record from replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    PageImage { lsn: Lsn, page: PageId, bytes: Vec<u8> },
    TxnBegin { lsn: Lsn, txn: u64 },
    TxnCommit { lsn: Lsn, txn: u64 },
    TxnAbort { lsn: Lsn, txn: u64 },
    Undo { lsn: Lsn, txn: u64, payload: Vec<u8> },
    Checkpoint { lsn: Lsn },
}

impl WalRecord {
    /// The record's LSN.
    pub fn lsn(&self) -> Lsn {
        match self {
            WalRecord::PageImage { lsn, .. }
            | WalRecord::TxnBegin { lsn, .. }
            | WalRecord::TxnCommit { lsn, .. }
            | WalRecord::TxnAbort { lsn, .. }
            | WalRecord::Undo { lsn, .. }
            | WalRecord::Checkpoint { lsn } => *lsn,
        }
    }
}

struct WalBuf {
    /// Encoded records not yet forced to the device.
    pending: Vec<u8>,
    /// LSN of the newest buffered record.
    buffered: Lsn,
    /// `TxnCommit` records among `pending` — the group-commit batch size
    /// a lingering leader watches.
    pending_commits: u64,
}

/// Group-commit coordinator state, guarded by [`Wal::group`]. The
/// condvar doubles as the leader's linger timer and the followers' park.
struct GroupState {
    /// A committer is currently performing (or about to perform) the
    /// shared force; later arrivals park instead of racing it.
    leader_active: bool,
}

/// The write-ahead log over a device's log area. See module docs.
pub struct Wal {
    device: Arc<dyn BlockDevice>,
    // lockrank: walio.1 — the append buffer; taken *inside* io_lock by a
    // force (batch swap) and bare by appenders.
    inner: Mutex<WalBuf>,
    /// Serialises batch swap + device append so file order == LSN order
    /// even with concurrent forces. Held across device I/O *instead of*
    /// `inner`, which is released before the write starts.
    // lockrank: walio.0
    io_lock: Mutex<()>,
    // lockrank: walgroup.0 — group-commit leader election; taken before
    // any walio lock on the commit path.
    group: Mutex<GroupState>,
    group_cv: Condvar,
    /// Transactions currently inside [`Wal::commit`]; a lingering leader
    /// stops waiting as soon as the batch covers all of them.
    committing: AtomicU64,
    config: GroupCommitConfig,
    next_lsn: AtomicU64,
    flushed: AtomicU64,
    /// Set when a device append failed mid-batch: the log may carry a
    /// durable torn fragment, and appending *past* it would put records
    /// where replay (which stops at the first corrupt record) can never
    /// see them — later commits would return Ok yet be unrecoverable.
    /// A poisoned log refuses all further appends and forces (commits
    /// fail loudly); truncation — reopening the database, or a
    /// successful checkpoint reset — clears the condition.
    poisoned: AtomicBool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("flushed", &self.flushed.load(Ordering::Relaxed))
            .field("next_lsn", &self.next_lsn.load(Ordering::Relaxed))
            .field("config", &self.config)
            .finish()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) — a real CRC, not a hash:
/// torn tails are exactly the burst errors CRCs guarantee to detect.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

impl Wal {
    /// A log whose first record gets LSN 1 (fresh database).
    pub fn new(device: Arc<dyn BlockDevice>) -> Arc<Wal> {
        Self::starting_at(device, 1)
    }

    /// A log resuming after replay: `first_lsn` must exceed every LSN
    /// already on the device so recovery-time appends stay monotone.
    /// Uses the default [`GroupCommitConfig`] (grouping on).
    pub fn starting_at(device: Arc<dyn BlockDevice>, first_lsn: Lsn) -> Arc<Wal> {
        Self::with_config(device, first_lsn, GroupCommitConfig::default())
    }

    /// A log with explicit group-commit tuning.
    pub fn with_config(
        device: Arc<dyn BlockDevice>,
        first_lsn: Lsn,
        config: GroupCommitConfig,
    ) -> Arc<Wal> {
        Arc::new(Wal {
            device,
            inner: Mutex::new_ranked(
                WalBuf { pending: Vec::new(), buffered: first_lsn - 1, pending_commits: 0 },
                rank::WAL_IO + 1,
            ),
            io_lock: Mutex::new_ranked((), rank::WAL_IO),
            group: Mutex::new_ranked(GroupState { leader_active: false }, rank::WAL_GROUP),
            group_cv: Condvar::new(),
            committing: AtomicU64::new(0),
            config,
            next_lsn: AtomicU64::new(first_lsn),
            flushed: AtomicU64::new(first_lsn - 1),
            poisoned: AtomicBool::new(false),
        })
    }

    /// The group-commit tuning this log runs with.
    pub fn group_commit_config(&self) -> GroupCommitConfig {
        self.config
    }

    fn check_poison(&self) -> StorageResult<()> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(StorageError::DeviceError(
                "wal: a previous append failed mid-batch; the log tail is suspect — \
                 reopen the database to recover"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Appends one record to the in-process group buffer and returns its
    /// LSN. Not durable until a force covers it. Fails fast on a
    /// poisoned log — buffering records that can never become durable
    /// would only defer the error to commit time.
    pub fn append(&self, payload: WalPayload<'_>) -> StorageResult<Lsn> {
        let probe_t = crate::probe::timer();
        let is_commit = matches!(payload, WalPayload::TxnCommit { .. });
        let mut inner = self.inner.lock();
        self.check_poison()?;
        // LSN assignment under the buffer lock: file order == LSN order.
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        let mut body = Vec::with_capacity(16);
        match payload {
            WalPayload::PageImage { page, bytes } => {
                body.push(KIND_PAGE_IMAGE);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&page.segment.to_le_bytes());
                body.extend_from_slice(&page.page.to_le_bytes());
                body.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                body.extend_from_slice(bytes);
            }
            WalPayload::TxnBegin { txn } => {
                body.push(KIND_TXN_BEGIN);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
            }
            WalPayload::TxnCommit { txn } => {
                body.push(KIND_TXN_COMMIT);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
            }
            WalPayload::TxnAbort { txn } => {
                body.push(KIND_TXN_ABORT);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
            }
            WalPayload::Undo { txn, payload } => {
                body.push(KIND_UNDO);
                body.extend_from_slice(&lsn.to_le_bytes());
                body.extend_from_slice(&txn.to_le_bytes());
                body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                body.extend_from_slice(payload);
            }
            WalPayload::Checkpoint => {
                body.push(KIND_CHECKPOINT);
                body.extend_from_slice(&lsn.to_le_bytes());
            }
        }
        inner.pending.extend_from_slice(&(body.len() as u32).to_le_bytes());
        inner.pending.extend_from_slice(&crc32(&body).to_le_bytes());
        inner.pending.extend_from_slice(&body);
        inner.buffered = lsn;
        if is_commit {
            inner.pending_commits += 1;
        }
        drop(inner);
        crate::probe::emit_elapsed(probe_t, crate::probe::ProbeEvent::WalAppend, (body.len() + 8) as u64);
        if is_commit && self.config.grouping() {
            // A leader may be lingering for exactly this record.
            self.group_cv.notify_all();
        }
        Ok(lsn)
    }

    /// One device append of `batch`, with the probe/IoStats accounting
    /// every log write must flow through — [`force`](Self::force) and
    /// [`reset`](Self::reset)'s re-append both funnel here, so profiler
    /// span trees and `prima_io_*` metrics see checkpoint-racing writes
    /// too. `commits` is the number of `TxnCommit` records the batch
    /// carries; batches carrying at least one feed the group-commit
    /// counters (`group_commit_batches` / `group_commit_commits`).
    fn append_batch(&self, batch: &[u8], commits: u64) -> StorageResult<()> {
        let probe_t = crate::probe::timer();
        self.device.wal_append(batch)?;
        if commits > 0 {
            let stats = self.device.stats();
            stats.add(&stats.group_commit_batches, 1);
            stats.add(&stats.group_commit_commits, commits);
        }
        crate::probe::emit_elapsed(probe_t, crate::probe::ProbeEvent::WalForce, batch.len() as u64);
        Ok(())
    }

    /// Forces every buffered record to the device in one sequential
    /// append. Returns the newest durable LSN.
    ///
    /// The buffer mutex is *not* held across the device write: the
    /// pending batch is swapped out under the lock, written under the
    /// I/O lock only, and `flushed` published after — concurrent
    /// appenders proceed while the force is in flight. On a device
    /// error the unwritten batch is spliced back in front of anything
    /// appended meanwhile (LSN order preserved) and the log is
    /// poisoned; a later [`reset`](Self::reset) can still re-append the
    /// full pending set onto a truncated log.
    pub fn force(&self) -> StorageResult<Lsn> {
        let _io = self.io_lock.lock();
        let (batch, upto, commits) = {
            let mut inner = self.inner.lock();
            self.check_poison()?;
            if inner.pending.is_empty() {
                return Ok(self.flushed.load(Ordering::Relaxed));
            }
            let batch = std::mem::take(&mut inner.pending);
            let commits = std::mem::replace(&mut inner.pending_commits, 0);
            (batch, inner.buffered, commits)
        };
        match self.append_batch(&batch, commits) {
            Ok(()) => {
                self.flushed.store(upto, Ordering::Relaxed);
                if self.config.grouping() {
                    // Any force can cover parked committers' records —
                    // flush-path forces included.
                    self.group_cv.notify_all();
                }
                Ok(upto)
            }
            Err(e) => {
                // The device may hold a torn fragment of this batch; see
                // the `poisoned` field docs.
                self.poisoned.store(true, Ordering::Relaxed);
                let mut inner = self.inner.lock();
                let mut restored = batch;
                restored.extend_from_slice(&inner.pending);
                inner.pending = restored;
                inner.pending_commits += commits;
                drop(inner);
                if self.config.grouping() {
                    // Wake parked committers so they observe the poison.
                    self.group_cv.notify_all();
                }
                Err(e)
            }
        }
    }

    /// The commit durability point: appends `txn`'s `TxnCommit` record
    /// and returns once a device force covers it — `Ok` implies the
    /// record (and every record before it) is durable.
    ///
    /// With grouping enabled (`max_batch > 1`) this is the
    /// cross-session group commit: the first committer to find no force
    /// in flight becomes *leader*, lingers briefly for other in-flight
    /// committers (bounded by [`GroupCommitConfig`]), and performs one
    /// [`force`](Self::force) covering every batched record; the rest
    /// park on a condvar until `flushed_lsn` passes their commit LSN. A
    /// lone committer leads immediately without lingering, so a
    /// single-session writing commit still costs exactly one force.
    pub fn commit(&self, txn: u64) -> StorageResult<Lsn> {
        if !self.config.grouping() {
            self.append(WalPayload::TxnCommit { txn })?;
            return self.force();
        }
        self.committing.fetch_add(1, Ordering::SeqCst);
        let result = self.commit_grouped(txn);
        self.committing.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn commit_grouped(&self, txn: u64) -> StorageResult<Lsn> {
        let lsn = self.append(WalPayload::TxnCommit { txn })?;
        loop {
            let flushed = self.flushed.load(Ordering::Relaxed);
            if flushed >= lsn {
                // Someone's force covered us; our record is durable.
                return Ok(flushed);
            }
            let mut g = self.group.lock();
            // Re-check under the lock: a leader may have finished
            // between the naked load and the acquire.
            let flushed = self.flushed.load(Ordering::Relaxed);
            if flushed >= lsn {
                return Ok(flushed);
            }
            self.check_poison()?;
            if g.leader_active {
                // Follower: park until the leader publishes. Bounded
                // wait, then re-check — a timeout is not an error, just
                // another trip around the loop (and a chance to take
                // over leadership if the force failed).
                let _ = self.group_cv.wait_for(&mut g, self.config.max_wait.max(Duration::from_micros(50)));
                continue;
            }
            // Leader: linger until every transaction currently inside
            // commit() has its record batched, the batch is full, or
            // max_wait elapses. A lone committer exits immediately.
            g.leader_active = true;
            let deadline = Instant::now() + self.config.max_wait;
            loop {
                let en_route = self.committing.load(Ordering::SeqCst);
                let batched = self.inner.lock().pending_commits;
                if batched >= en_route.min(self.config.max_batch as u64) {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                if self.group_cv.wait_for(&mut g, deadline - now).timed_out() {
                    break;
                }
            }
            drop(g);
            let res = self.force();
            self.group.lock().leader_active = false;
            self.group_cv.notify_all();
            // Success: loop re-checks flushed (>= lsn, since our record
            // was in the batch the force swapped out). Failure: the
            // error is ours to report — our commit is not durable.
            res?;
        }
    }

    /// Newest LSN durably on the device.
    pub fn flushed_lsn(&self) -> Lsn {
        self.flushed.load(Ordering::Relaxed)
    }

    /// Newest LSN appended (durable or buffered).
    pub fn buffered_lsn(&self) -> Lsn {
        self.inner.lock().buffered
    }

    /// Truncates the device's log area (checkpoint: everything
    /// redo-relevant up to the force that preceded the flush is now in
    /// the flushed pages and metadata snapshot). Records still *pending*
    /// in the group buffer — e.g. page images of non-transactional
    /// writers racing the checkpoint — are not discarded: they are
    /// appended to the fresh log immediately (through the same
    /// accounting funnel as a force, so probes and `prima_io_*` see
    /// them), so `flushed == buffered` stays truthful. The LSN counter
    /// keeps increasing.
    pub fn reset(&self) -> StorageResult<()> {
        let _io = self.io_lock.lock();
        let mut inner = self.inner.lock();
        // lint: allow(lock-across-io, the io_lock IS the device-append serialisation; truncation must exclude concurrent forces and buffer mutation)
        self.device.wal_reset()?;
        // Truncation discards any torn fragment, so the log is clean
        // again.
        self.poisoned.store(false, Ordering::Relaxed);
        if !inner.pending.is_empty() {
            if let Err(e) = self.append_batch(&inner.pending, inner.pending_commits) {
                self.poisoned.store(true, Ordering::Relaxed);
                return Err(e);
            }
            inner.pending.clear();
        }
        inner.pending_commits = 0;
        self.flushed.store(inner.buffered, Ordering::Relaxed);
        Ok(())
    }

    /// Decodes the device's entire log area. Replay stops silently at the
    /// first truncated or checksum-failing record (a crash's torn tail);
    /// corruption *before* valid records is reported as an error.
    pub fn replay(device: &Arc<dyn BlockDevice>) -> StorageResult<Vec<WalRecord>> {
        let bytes = device.wal_contents()?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = le_u32(&bytes[pos..pos + 4]) as usize;
            let crc = le_u32(&bytes[pos + 4..pos + 8]);
            let body_start = pos + 8;
            if body_start + len > bytes.len() {
                break; // torn tail
            }
            let body = &bytes[body_start..body_start + len];
            if crc32(body) != crc {
                break; // torn tail (partial overwrite)
            }
            match Self::decode_body(body) {
                Some(rec) => out.push(rec),
                None => {
                    return Err(StorageError::DeviceError(format!(
                        "wal: undecodable record at byte {pos}"
                    )))
                }
            }
            pos = body_start + len;
        }
        Ok(out)
    }

    fn decode_body(body: &[u8]) -> Option<WalRecord> {
        if body.len() < 9 {
            return None;
        }
        let kind = body[0];
        let lsn = le_u64(&body[1..9]);
        let rest = &body[9..];
        Some(match kind {
            KIND_PAGE_IMAGE => {
                if rest.len() < 12 {
                    return None;
                }
                let segment = le_u32(&rest[0..4]);
                let page = le_u32(&rest[4..8]);
                let n = le_u32(&rest[8..12]) as usize;
                if rest.len() < 12 + n {
                    return None;
                }
                WalRecord::PageImage {
                    lsn,
                    page: PageId::new(segment, page),
                    bytes: rest[12..12 + n].to_vec(),
                }
            }
            KIND_TXN_BEGIN | KIND_TXN_COMMIT | KIND_TXN_ABORT => {
                if rest.len() < 8 {
                    return None;
                }
                let txn = le_u64(&rest[0..8]);
                match kind {
                    KIND_TXN_BEGIN => WalRecord::TxnBegin { lsn, txn },
                    KIND_TXN_COMMIT => WalRecord::TxnCommit { lsn, txn },
                    _ => WalRecord::TxnAbort { lsn, txn },
                }
            }
            KIND_UNDO => {
                if rest.len() < 12 {
                    return None;
                }
                let txn = le_u64(&rest[0..8]);
                let n = le_u32(&rest[8..12]) as usize;
                if rest.len() < 12 + n {
                    return None;
                }
                WalRecord::Undo { lsn, txn, payload: rest[12..12 + n].to_vec() }
            }
            KIND_CHECKPOINT => WalRecord::Checkpoint { lsn },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use crate::fault_disk::{FaultDisk, FaultSchedule};
    use crate::probe::{self, ProbeEvent};
    use std::sync::atomic::AtomicUsize;

    fn device() -> Arc<dyn BlockDevice> {
        Arc::new(SimDisk::new())
    }

    #[test]
    fn append_force_replay_round_trip() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        let l1 = wal.append(WalPayload::TxnBegin { txn: 7 }).unwrap();
        let l2 = wal.append(WalPayload::Undo { txn: 7, payload: b"undo-bytes" }).unwrap();
        let l3 = wal
            .append(WalPayload::PageImage {
                page: PageId::new(2, 9),
                bytes: &[1, 2, 3, 4],
            })
            .unwrap();
        let l4 = wal.append(WalPayload::TxnCommit { txn: 7 }).unwrap();
        assert_eq!((l1, l2, l3, l4), (1, 2, 3, 4));
        assert_eq!(wal.flushed_lsn(), 0, "nothing durable before force");
        assert_eq!(wal.force().unwrap(), 4);
        assert_eq!(wal.flushed_lsn(), 4);
        let recs = Wal::replay(&dev).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0], WalRecord::TxnBegin { lsn: 1, txn: 7 });
        assert_eq!(
            recs[1],
            WalRecord::Undo { lsn: 2, txn: 7, payload: b"undo-bytes".to_vec() }
        );
        assert_eq!(
            recs[2],
            WalRecord::PageImage { lsn: 3, page: PageId::new(2, 9), bytes: vec![1, 2, 3, 4] }
        );
        assert_eq!(recs[3], WalRecord::TxnCommit { lsn: 4, txn: 7 });
    }

    #[test]
    fn unforced_tail_is_lost() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        wal.append(WalPayload::TxnBegin { txn: 1 }).unwrap();
        wal.force().unwrap();
        wal.append(WalPayload::TxnCommit { txn: 1 }).unwrap(); // never forced
        drop(wal);
        let recs = Wal::replay(&dev).unwrap();
        assert_eq!(recs.len(), 1, "only the forced prefix survives");
    }

    #[test]
    fn torn_tail_stops_replay() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        wal.append(WalPayload::TxnBegin { txn: 1 }).unwrap();
        wal.force().unwrap();
        // Simulate a torn append: half a record at the end.
        dev.wal_append(&[13, 0, 0, 0, 99, 99]).unwrap();
        let recs = Wal::replay(&dev).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn reset_truncates_device_log() {
        let dev = device();
        let wal = Wal::new(Arc::clone(&dev));
        wal.append(WalPayload::Checkpoint).unwrap();
        wal.force().unwrap();
        wal.reset().unwrap();
        assert!(Wal::replay(&dev).unwrap().is_empty());
        // LSNs keep increasing after a reset.
        let lsn = wal.append(WalPayload::TxnBegin { txn: 2 }).unwrap();
        assert_eq!(lsn, 2);
    }

    #[test]
    fn group_append_is_one_device_transfer() {
        let dev = Arc::new(SimDisk::new());
        let wal = Wal::new(Arc::clone(&dev) as Arc<dyn BlockDevice>);
        for i in 0..10 {
            wal.append(WalPayload::TxnBegin { txn: i }).unwrap();
        }
        wal.force().unwrap();
        let s = dev.stats().snapshot();
        assert_eq!(s.wal_forces, 1, "ten records, one sequential append");
        assert!(s.wal_bytes > 0);
    }

    /// The satellite-1 regression: with the old code, `force` held the
    /// buffer mutex across `device.wal_append`, so an appender on a
    /// second thread blocked for the whole device write. Stall the
    /// device mid-force and prove an append on another thread completes
    /// while the force is still in flight.
    #[test]
    fn append_completes_while_force_is_stalled_on_device() {
        let fault = FaultDisk::new(Arc::new(SimDisk::new()), FaultSchedule::manual(11));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;
        let wal = Wal::new(dev);
        wal.append(WalPayload::TxnBegin { txn: 1 }).unwrap();

        fault.hold_wal_appends();
        let forcer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || wal.force().unwrap())
        };
        // Wait until the force is provably inside the device call.
        while fault.stalled_wal_appends() == 0 {
            std::thread::yield_now();
        }
        // The old code deadlocked here: append needed the mutex the
        // stalled force was holding.
        let lsn = wal.append(WalPayload::TxnBegin { txn: 2 }).unwrap();
        assert_eq!(lsn, 2, "append proceeded during the in-flight force");
        fault.release_wal_appends();
        assert_eq!(forcer.join().unwrap(), 1, "force covered only the swapped batch");
        assert_eq!(wal.buffered_lsn(), 2);
        wal.force().unwrap();
        assert_eq!(wal.flushed_lsn(), 2);
    }

    /// Satellite 2: a poisoned log refuses appends immediately instead
    /// of buffering records that can never become durable.
    #[test]
    fn poisoned_log_fails_append_fast() {
        let fault = FaultDisk::new(Arc::new(SimDisk::new()), FaultSchedule::manual(12));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;
        let wal = Wal::new(dev);
        wal.append(WalPayload::TxnBegin { txn: 1 }).unwrap();
        fault.fail_wal_appends(1);
        assert!(wal.force().is_err(), "injected device error fails the force");
        assert!(
            wal.append(WalPayload::TxnCommit { txn: 1 }).is_err(),
            "append must fail fast on a poisoned log"
        );
        // The batch the failed force swapped out was restored: reset
        // re-appends it onto the truncated log and clears the poison.
        wal.reset().unwrap();
        wal.append(WalPayload::TxnCommit { txn: 1 }).unwrap();
        wal.force().unwrap();
        let by_kind = Wal::replay(&(Arc::clone(&fault) as Arc<dyn BlockDevice>)).unwrap();
        assert_eq!(by_kind.len(), 2, "begin survived via reset re-append, then commit");
    }

    /// A failed force splices its batch back *in front of* records
    /// appended while the write was in flight, so the reset re-append
    /// keeps LSN order on the device.
    #[test]
    fn failed_force_restores_batch_in_lsn_order() {
        let fault = FaultDisk::new(Arc::new(SimDisk::new()), FaultSchedule::manual(13));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;
        let wal = Wal::new(dev);
        wal.append(WalPayload::TxnBegin { txn: 1 }).unwrap();

        fault.hold_wal_appends();
        fault.fail_wal_appends(1);
        let forcer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || wal.force())
        };
        while fault.stalled_wal_appends() == 0 {
            std::thread::yield_now();
        }
        // Appended mid-force: must end up *after* txn 1 in the restored
        // pending buffer even though the force fails.
        wal.append(WalPayload::TxnBegin { txn: 2 }).unwrap();
        fault.release_wal_appends();
        assert!(forcer.join().unwrap().is_err());

        wal.reset().unwrap();
        let recs = Wal::replay(&(Arc::clone(&fault) as Arc<dyn BlockDevice>)).unwrap();
        assert_eq!(
            recs,
            vec![WalRecord::TxnBegin { lsn: 1, txn: 1 }, WalRecord::TxnBegin { lsn: 2, txn: 2 }],
            "reset re-appended the failed batch plus later records in LSN order"
        );
    }

    /// The tentpole in miniature: many threads commit concurrently;
    /// stalling the first force makes the rest pile into shared batches,
    /// so the device sees far fewer forces than commits — and the group
    /// counters account for every commit record made durable.
    #[test]
    fn concurrent_commits_share_forces() {
        const COMMITTERS: u64 = 8;
        let fault = FaultDisk::new(Arc::new(SimDisk::new()), FaultSchedule::manual(14));
        let dev: Arc<dyn BlockDevice> = Arc::clone(&fault) as Arc<dyn BlockDevice>;
        let wal = Wal::with_config(
            dev,
            1,
            GroupCommitConfig { max_wait: Duration::from_millis(100), max_batch: 64 },
        );

        fault.hold_wal_appends();
        let handles: Vec<_> = (0..COMMITTERS)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    wal.append(WalPayload::TxnBegin { txn: t }).unwrap();
                    wal.commit(t).unwrap()
                })
            })
            .collect();
        // First leader is stalled inside the device append; give the
        // other committers time to batch up behind it.
        while fault.stalled_wal_appends() == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(20));
        fault.release_wal_appends();
        for h in handles {
            h.join().unwrap();
        }

        let s = fault.stats().snapshot();
        assert_eq!(s.group_commit_commits, COMMITTERS, "every commit record accounted durable");
        assert!(
            s.group_commit_batches < COMMITTERS,
            "commits shared batches: {} batches for {COMMITTERS} commits",
            s.group_commit_batches
        );
        assert!(
            s.wal_forces < COMMITTERS,
            "one fsync covered many committers: {} forces for {COMMITTERS} commits",
            s.wal_forces
        );
        assert!(wal.flushed_lsn() >= COMMITTERS * 2, "all brackets durable");
    }

    /// With grouping disabled every commit pays its own force — the
    /// pre-group behaviour the bench uses as baseline.
    #[test]
    fn force_each_config_forces_per_commit() {
        let dev = Arc::new(SimDisk::new());
        let wal = Wal::with_config(
            Arc::clone(&dev) as Arc<dyn BlockDevice>,
            1,
            GroupCommitConfig::force_each(),
        );
        for t in 0..4 {
            wal.append(WalPayload::TxnBegin { txn: t }).unwrap();
            wal.commit(t).unwrap();
        }
        let s = dev.stats().snapshot();
        assert_eq!(s.wal_forces, 4);
        assert_eq!(s.group_commit_batches, 4);
        assert_eq!(s.group_commit_commits, 4);
    }

    static RESET_FORCE_EVENTS: AtomicUsize = AtomicUsize::new(0);
    fn count_force_events(event: ProbeEvent, _ns: u64, _bytes: u64) {
        if matches!(event, ProbeEvent::WalForce) {
            RESET_FORCE_EVENTS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Satellite 3: `reset`'s re-append of checkpoint-racing pending
    /// records flows through the shared accounting funnel — it emits a
    /// `WalForce` probe event and lands in the device's force counters
    /// instead of bypassing both.
    #[test]
    fn reset_reappend_is_accounted() {
        let dev = Arc::new(SimDisk::new());
        let wal = Wal::new(Arc::clone(&dev) as Arc<dyn BlockDevice>);
        wal.append(WalPayload::TxnBegin { txn: 1 }).unwrap();
        wal.append(WalPayload::TxnCommit { txn: 1 }).unwrap(); // never forced

        RESET_FORCE_EVENTS.store(0, Ordering::Relaxed);
        probe::set_thread_hook(Some(count_force_events));
        let before = dev.stats().snapshot();
        wal.reset().unwrap();
        probe::set_thread_hook(None);
        let d = dev.stats().snapshot().since(&before);

        assert_eq!(
            RESET_FORCE_EVENTS.load(Ordering::Relaxed),
            1,
            "reset's re-append emits the WalForce probe event"
        );
        assert_eq!(d.wal_forces, 1, "device force counter sees the re-append");
        assert!(d.wal_bytes > 0);
        assert_eq!(d.group_commit_commits, 1, "the re-appended commit record is accounted");
        assert_eq!(wal.flushed_lsn(), 2, "re-appended records are durable");
    }
}
