//! Fixture: exactly one `lock-across-io` finding — device I/O under a
//! kernel lock. Not compiled; lexed and analysed by `tests/lint_rules.rs`.

pub struct S {
    // lockrank: buffer.0
    inner: Mutex<u32>,
}

impl S {
    pub fn bad(&self, dev: &Dev) -> StorageResult<()> {
        let _g = self.inner.lock();
        dev.write_block(0)?;
        Ok(())
    }
}
