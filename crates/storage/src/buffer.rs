//! The database buffer.
//!
//! Section 3.3 of the paper: existing replacement algorithms (LRU etc.
//! \[EH82\]) are tailored to **one** page size; PRIMA must manage five sizes
//! in one buffer. The paper names the two candidate designs:
//!
//! 1. *"division of the buffer into several independent parts, each of
//!    which managed by a dedicated replacement algorithm. Such a static
//!    partitioning is not very flexible when reference patterns change."*
//!    — implemented here as [`PartitionedBuffer`], the baseline.
//! 2. *"modify a replacement algorithm in such a way that it can handle
//!    different page sizes. This idea has been pursued in the storage
//!    system, i.e., the well-known LRU algorithm was altered in an
//!    appropriate way."* — implemented as [`BufferManager`]: one byte-
//!    budgeted pool whose victim selection walks the global LRU order and
//!    evicts as many least-recently-used unfixed pages as needed to free
//!    room for the incoming page, whatever the size mix.
//!
//! Experiment `E-BUF` (see DESIGN.md) contrasts the two under shifting
//! reference patterns.
//!
//! Pages are accessed under a **fix/unfix** protocol: [`BufferManager::fix`]
//! and [`BufferManager::fix_mut`] return RAII guards; a fixed page is
//! never evicted.
//!
//! ## Replacement bookkeeping: intrusive O(1) LRU
//!
//! Recency used to be tracked as `BTreeMap<tick, PageId>`, costing two
//! O(log n) map operations plus a node allocation on **every** fix — the
//! hottest loop of molecule assembly (Section 3.3 makes fix/unfix the
//! dominant path). The pool now keeps an intrusive doubly-linked list
//! threaded through the frame table itself: each frame carries `prev`/
//! `next` *indices* into the frame arena, so a touch is unlink + push-tail
//! — O(1), allocation-free. Victim selection still walks from the LRU head
//! skipping fixed frames and evicts as many unfixed pages as the incoming
//! size needs (the paper's size-aware "modified LRU"); eviction *order* is
//! identical to the tick-based implementation (`lru_matches_reference_model`
//! pins this against a BTreeMap reference model).
//!
//! [`BufferStats`] additionally counts `fix_calls` (guard acquisitions —
//! shard-lock traffic) versus `pages_loaded` (device reads): the batched
//! atom-read path in `prima-access` exists to drive the first number down
//! toward the second.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PageSize, PageType};
use crate::probe::{self, ProbeEvent};
use crate::wal::{Lsn, Wal, WalPayload};
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{rank, Mutex, RawRwLock, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where the buffer loads and stores pages. Implemented by the storage
/// system over the (simulated) block device.
pub trait PageStore: Send + Sync {
    /// Reads the page image from external storage.
    fn load(&self, id: PageId) -> StorageResult<Page>;
    /// Writes the page image back (the implementation re-checksums).
    fn store(&self, page: &mut Page) -> StorageResult<()>;
    /// Page size of the given segment.
    fn page_size_of(&self, segment: u32) -> StorageResult<PageSize>;
    /// Whether updates to this segment's pages are WAL-logged (transient
    /// structures opt out; they are rebuilt, not recovered).
    fn wal_logged(&self, _segment: u32) -> bool {
        true
    }
}

/// Replacement policy identifier, reported in benchmark output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Single pool, size-aware ("modified") LRU — the paper's choice.
    ModifiedLru,
    /// Five static pools, one per page size — the paper's strawman.
    StaticPartition,
}

/// Buffer statistics (logical vs physical accesses).
#[derive(Debug, Default)]
pub struct BufferStats {
    /// Fix requests satisfied from the pool.
    pub hits: AtomicU64,
    /// Fix requests that caused a device read.
    pub misses: AtomicU64,
    /// Pages pushed out by replacement.
    pub evictions: AtomicU64,
    /// Dirty pages written back (eviction or flush).
    pub writebacks: AtomicU64,
    /// Guard acquisitions (`fix`/`fix_mut`/`fix_new`): each one is a
    /// shard-lock round trip plus an LRU touch. Batched reads amortise
    /// several logical record accesses into one fix call.
    pub fix_calls: AtomicU64,
    /// Pages actually read from the device. Every miss that completes its
    /// load counts here — including a racer whose freshly loaded image is
    /// discarded because another thread installed the page first — so
    /// `pages_loaded == misses` minus loads that failed with an error.
    pub pages_loaded: AtomicU64,
}

/// Point-in-time copy of every [`BufferStats`] counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub writebacks: u64,
    pub fix_calls: u64,
    pub pages_loaded: u64,
}

impl BufferStats {
    /// Fraction of fixes served without device I/O.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// `(hits, misses, evictions, writebacks)`. See [`BufferStats::detail`]
    /// for the full counter set including fix-call accounting.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.writebacks.load(Ordering::Relaxed),
        )
    }

    /// All counters, including `fix_calls` vs `pages_loaded` — the pair the
    /// batched-assembly bench uses to prove guard-churn reduction.
    pub fn detail(&self) -> BufferStatsSnapshot {
        BufferStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            fix_calls: self.fix_calls.load(Ordering::Relaxed),
            pages_loaded: self.pages_loaded.load(Ordering::Relaxed),
        }
    }

    /// Guard acquisitions so far.
    pub fn fix_calls(&self) -> u64 {
        self.fix_calls.load(Ordering::Relaxed)
    }

    /// Device page reads so far.
    pub fn pages_loaded(&self) -> u64 {
        self.pages_loaded.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.fix_calls.store(0, Ordering::Relaxed);
        self.pages_loaded.store(0, Ordering::Relaxed);
    }

    fn add_from(&self, other: &BufferStats) {
        self.hits.fetch_add(other.hits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.misses.fetch_add(other.misses.load(Ordering::Relaxed), Ordering::Relaxed);
        self.evictions.fetch_add(other.evictions.load(Ordering::Relaxed), Ordering::Relaxed);
        self.writebacks.fetch_add(other.writebacks.load(Ordering::Relaxed), Ordering::Relaxed);
        self.fix_calls.fetch_add(other.fix_calls.load(Ordering::Relaxed), Ordering::Relaxed);
        self.pages_loaded
            .fetch_add(other.pages_loaded.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl BufferStatsSnapshot {
    /// Component-wise difference `self - earlier`; saturates at zero so a
    /// reset between snapshots cannot produce nonsense (same contract as
    /// `IoSnapshot::since`).
    pub fn since(&self, earlier: &BufferStatsSnapshot) -> BufferStatsSnapshot {
        BufferStatsSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            fix_calls: self.fix_calls.saturating_sub(earlier.fix_calls),
            pages_loaded: self.pages_loaded.saturating_sub(earlier.pages_loaded),
        }
    }
}

impl crate::stats::StatsSnapshot for BufferStatsSnapshot {
    const FAMILY: &'static str = "buffer";

    fn delta(&self, earlier: &Self) -> Self {
        self.since(earlier)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hits", self.hits),
            ("misses", self.misses),
            ("evictions", self.evictions),
            ("writebacks", self.writebacks),
            ("fix_calls", self.fix_calls),
            ("pages_loaded", self.pages_loaded),
        ]
    }
}

// lockrank: buffer.0 — per-page frame locks, same rank as the shard
// latches: the two interleave in *both* orders. Eviction write-locks an
// unfixed victim frame while holding the shard latch (shard → frame), and
// a caller holding a fixed page's guard may fix another page (frame →
// shard). The cycle cannot close because a fixed frame (`fix_count > 0`)
// is never chosen as a victim, so the frame locks taken under a shard
// latch are disjoint from guards held by fixers — the pair is modelled as
// one rank level, and peer frame guards (one batch read-holds several)
// are likewise data-dependent.
// lockrank-name: frame = buffer.0
type FrameRef = Arc<RwLock<Page>>;

/// Every frame lock is built here so the rank rides along.
fn new_frame(page: Page) -> FrameRef {
    Arc::new(RwLock::new_ranked(page, rank::BUFFER))
}

/// Sentinel for "no link" in the intrusive LRU list.
const NIL: usize = usize::MAX;

struct FrameMeta {
    id: PageId,
    frame: FrameRef,
    fix_count: u32,
    dirty: bool,
    size: PageSize,
    /// LSN of the newest WAL page image of this frame. The write-ahead
    /// invariant: the frame must not be stored while
    /// `recovery_lsn > wal.flushed_lsn()`.
    recovery_lsn: Lsn,
    /// Intrusive LRU links: arena indices of the neighbouring frames
    /// (towards LRU / towards MRU); `NIL` at the list ends.
    lru_prev: usize,
    lru_next: usize,
}

/// One latch shard of the pool. Frames live in a slot arena; the LRU order
/// is a doubly-linked list threaded through the arena by index, making
/// every touch O(1) with no allocation.
struct PoolInner {
    /// Slot arena; freed slots are recycled through `free_slots`.
    arena: Vec<Option<FrameMeta>>,
    free_slots: Vec<usize>,
    /// Page -> arena slot.
    index: HashMap<PageId, usize>,
    /// Head = least recently used, tail = most recently used.
    lru_head: usize,
    lru_tail: usize,
    used_bytes: usize,
    /// Number of dirty frames — lets flush_all be a cheap no-op on
    /// read-only paths (page-sequence chained reads call it per read).
    dirty_count: usize,
}

impl PoolInner {
    fn new() -> Self {
        PoolInner {
            arena: Vec::new(),
            free_slots: Vec::new(),
            index: HashMap::new(),
            lru_head: NIL,
            lru_tail: NIL,
            used_bytes: 0,
            dirty_count: 0,
        }
    }

    fn get(&self, id: PageId) -> Option<&FrameMeta> {
        let slot = *self.index.get(&id)?;
        self.arena[slot].as_ref()
    }

    fn get_mut(&mut self, id: PageId) -> Option<&mut FrameMeta> {
        let slot = *self.index.get(&id)?;
        self.arena[slot].as_mut()
    }

    fn resident(&self) -> usize {
        self.index.len()
    }

    /// Detaches `slot` from the LRU list (it must be linked).
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn lru_unlink(&mut self, slot: usize) {
        let (prev, next) = {
            // lint: allow(error-hygiene, intrusive LRU invariant: linked slots are occupied (checked by debug assertions))
            let m = self.arena[slot].as_ref().expect("linked slot");
            (m.lru_prev, m.lru_next)
        };
        match prev {
            NIL => self.lru_head = next,
            // lint: allow(error-hygiene, intrusive LRU invariant: linked slots are occupied)
            p => self.arena[p].as_mut().expect("linked prev").lru_next = next,
        }
        match next {
            NIL => self.lru_tail = prev,
            // lint: allow(error-hygiene, intrusive LRU invariant: linked slots are occupied)
            n => self.arena[n].as_mut().expect("linked next").lru_prev = prev,
        }
        // lint: allow(error-hygiene, intrusive LRU invariant: linked slots are occupied)
        let m = self.arena[slot].as_mut().expect("linked slot");
        m.lru_prev = NIL;
        m.lru_next = NIL;
    }

    /// Appends `slot` at the MRU end.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn lru_push_tail(&mut self, slot: usize) {
        let old_tail = self.lru_tail;
        {
            // lint: allow(error-hygiene, callers pass slots they just found in the page index)
            let m = self.arena[slot].as_mut().expect("slot occupied");
            m.lru_prev = old_tail;
            m.lru_next = NIL;
        }
        match old_tail {
            NIL => self.lru_head = slot,
            // lint: allow(error-hygiene, the LRU tail is occupied whenever the list is non-empty)
            t => self.arena[t].as_mut().expect("tail occupied").lru_next = slot,
        }
        self.lru_tail = slot;
    }

    /// Moves the page to the MRU end — O(1).
    fn touch(&mut self, id: PageId) {
        if let Some(&slot) = self.index.get(&id) {
            if self.lru_tail != slot {
                self.lru_unlink(slot);
                self.lru_push_tail(slot);
            }
        }
    }

    fn insert_frame(&mut self, id: PageId, frame: FrameRef, dirty: bool, size: PageSize) {
        let meta = FrameMeta {
            id,
            frame,
            fix_count: 1,
            dirty,
            size,
            recovery_lsn: 0,
            lru_prev: NIL,
            lru_next: NIL,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.arena[s] = Some(meta);
                s
            }
            None => {
                self.arena.push(Some(meta));
                self.arena.len() - 1
            }
        };
        self.index.insert(id, slot);
        self.lru_push_tail(slot);
        self.used_bytes += size.bytes();
        if dirty {
            self.dirty_count += 1;
        }
    }

    /// Unlinks and removes the frame, maintaining byte/dirty accounting.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn remove_frame(&mut self, id: PageId) -> Option<FrameMeta> {
        let slot = self.index.remove(&id)?;
        self.lru_unlink(slot);
        // lint: allow(error-hygiene, callers pass slots they just found in the page index)
        let meta = self.arena[slot].take().expect("indexed slot occupied");
        self.free_slots.push(slot);
        self.used_bytes -= meta.size.bytes();
        if meta.dirty {
            self.dirty_count -= 1;
        }
        Some(meta)
    }

    /// Least-recently-used page with no fixes, if any (the modified-LRU
    /// victim walk: skip fixed frames, oldest first).
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn lru_victim(&self) -> Option<PageId> {
        let mut slot = self.lru_head;
        while slot != NIL {
            // lint: allow(error-hygiene, intrusive LRU invariant: linked slots are occupied)
            let m = self.arena[slot].as_ref().expect("linked slot");
            if m.fix_count == 0 {
                return Some(m.id);
            }
            slot = m.lru_next;
        }
        None
    }

    /// Iterates over resident frames in arbitrary order.
    fn frames_mut(&mut self) -> impl Iterator<Item = &mut FrameMeta> {
        self.arena.iter_mut().flatten()
    }

    fn frames(&self) -> impl Iterator<Item = &FrameMeta> {
        self.arena.iter().flatten()
    }

    fn mark_dirty(&mut self, id: PageId) {
        if let Some(m) = self.get_mut(id) {
            if !m.dirty {
                m.dirty = true;
                self.dirty_count += 1;
            }
        }
    }

    /// Pages from LRU to MRU (test/diagnostic use).
    #[cfg(test)]
    fn lru_order(&self) -> Vec<PageId> {
        let mut out = Vec::new();
        let mut slot = self.lru_head;
        while slot != NIL {
            let m = self.arena[slot].as_ref().expect("linked slot");
            out.push(m.id);
            slot = m.lru_next;
        }
        out
    }
}

/// The paper's buffer: byte budget, size-aware LRU victim selection. See
/// module docs.
///
/// The pool can be split into latch *shards* (by page-id hash) so that
/// concurrent fixes from parallel DUs do not serialise on one mutex; each
/// shard runs the modified-LRU algorithm over its slice of the byte
/// budget. One shard (the default of [`BufferManager::new`]) gives the
/// exact single-pool behaviour.
pub struct BufferManager {
    store: Arc<dyn PageStore>,
    capacity_bytes: usize,
    // lockrank: buffer.0 — shard latches.
    // lockrank-name: shard = buffer.0
    shards: Vec<Arc<Mutex<PoolInner>>>,
    shard_capacity: usize,
    stats: Arc<BufferStats>,
    /// When present, updates are WAL-logged: every unfix of an update
    /// guard appends a page image, and flush/eviction enforce
    /// write-ahead (force before store).
    wal: Option<Arc<Wal>>,
}

impl BufferManager {
    /// A buffer of `capacity_bytes` over the given page store (one latch
    /// shard: exact global LRU).
    pub fn new(store: Arc<dyn PageStore>, capacity_bytes: usize) -> Self {
        Self::with_shards(store, capacity_bytes, 1)
    }

    /// A buffer with `shards` latch shards (for multi-threaded use).
    ///
    /// Every shard must be able to hold one 8K page, so the effective
    /// shard count is clamped to `capacity_bytes / 8192` — the shard
    /// slices always sum to **at most** `capacity_bytes` (small budgets
    /// degrade to fewer shards rather than overcommitting the budget).
    pub fn with_shards(store: Arc<dyn PageStore>, capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.max(1).min((capacity_bytes / 8192).max(1));
        // Equal slices; with one shard this is the caller's exact byte
        // budget (tests use tiny pools deliberately).
        let shard_capacity = capacity_bytes / shards;
        BufferManager {
            store,
            capacity_bytes,
            shards: (0..shards)
                .map(|_| Arc::new(Mutex::new_ranked(PoolInner::new(), rank::BUFFER)))
                .collect(),
            shard_capacity,
            stats: Arc::new(BufferStats::default()),
            wal: None,
        }
    }

    /// Attaches a write-ahead log: from now on the pool logs page images
    /// on update-unfix and enforces WAL-before-data on flush/eviction.
    pub fn attach_wal(mut self, wal: Arc<Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    fn shard(&self, id: PageId) -> &Arc<Mutex<PoolInner>> {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        let mut h = id.segment as u64 ^ 0x9e37_79b9_7f4a_7c15;
        h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(id.page as u64);
        h ^= h >> 33;
        &self.shards[(h as usize) % self.shards.len()]
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    pub fn stats(&self) -> Arc<BufferStats> {
        Arc::clone(&self.stats)
    }

    /// Bytes currently occupied by buffered pages.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes).sum()
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().resident()).sum()
    }

    /// Number of frames currently fixed (guard alive). Zero whenever no
    /// guards are held — tests use this to prove fix/unfix balance (e.g.
    /// that a dropped cursor leaks no fixes).
    pub fn fixed_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().frames().filter(|m| m.fix_count > 0).count())
            .sum()
    }

    /// True if the page is currently buffered (for tests/benches).
    pub fn is_resident(&self, id: PageId) -> bool {
        self.shard(id).lock().get(id).is_some()
    }

    /// Fixes a page for reading. The returned guard keeps the page in the
    /// buffer and allows shared access.
    pub fn fix(&self, id: PageId) -> StorageResult<PageGuard> {
        probe::observed(ProbeEvent::BufferFix, || {
            self.stats.fix_calls.fetch_add(1, Ordering::Relaxed);
            let frame = self.fix_frame(id, false)?;
            let lock = frame.read_arc();
            Ok(PageGuard { lock: Some(lock), pool: Arc::clone(self.shard(id)), id })
        })
    }

    /// Fixes a page for update. Exclusive; the frame is marked dirty.
    pub fn fix_mut(&self, id: PageId) -> StorageResult<PageGuardMut> {
        probe::observed(ProbeEvent::BufferFix, || {
            self.stats.fix_calls.fetch_add(1, Ordering::Relaxed);
            let frame = self.fix_frame(id, true)?;
            let lock = frame.write_arc();
            Ok(PageGuardMut {
                lock: Some(lock),
                pool: Arc::clone(self.shard(id)),
                id,
                wal: self.guard_wal(id),
            })
        })
    }

    /// The WAL handle an update guard on `id` should log to, if any.
    fn guard_wal(&self, id: PageId) -> Option<Arc<Wal>> {
        self.wal.as_ref().filter(|_| self.store.wal_logged(id.segment)).cloned()
    }

    /// Installs a brand-new page (after allocation) without reading the
    /// device, and returns it fixed for update.
    pub fn fix_new(&self, id: PageId, ptype: PageType) -> StorageResult<PageGuardMut> {
        let probe_t = probe::timer();
        self.stats.fix_calls.fetch_add(1, Ordering::Relaxed);
        let size = self.store.page_size_of(id.segment)?;
        let page = Page::new(id, size, ptype);
        let frame = {
            let mut inner = self.shard(id).lock();
            if let Some(m) = inner.get_mut(id) {
                // Re-use of a freed page number: overwrite in place.
                m.fix_count += 1;
                let f = Arc::clone(&m.frame);
                inner.mark_dirty(id);
                inner.touch(id);
                drop(inner);
                *f.write() = page;
                f
            } else {
                self.make_room(&mut inner, size.bytes())?;
                let f: FrameRef = new_frame(page);
                inner.insert_frame(id, Arc::clone(&f), true, size);
                f
            }
        };
        let lock = frame.write_arc();
        probe::emit_elapsed(probe_t, ProbeEvent::BufferFix, 0);
        Ok(PageGuardMut {
            lock: Some(lock),
            pool: Arc::clone(self.shard(id)),
            id,
            wal: self.guard_wal(id),
        })
    }

    /// Drops a page from the buffer without write-back (used when the page
    /// is freed). No-op if not resident. Errors if the page is fixed.
    pub fn discard(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.shard(id).lock();
        if let Some(m) = inner.get(id) {
            if m.fix_count > 0 {
                return Err(StorageError::FixConflict(id.desc()));
            }
            inner.remove_frame(id);
        }
        Ok(())
    }

    /// Writes every dirty page back to the store; the pool keeps its
    /// contents (a checkpoint, not a shutdown).
    pub fn flush_all(&self) -> StorageResult<()> {
        for shard in &self.shards {
            let dirty: Vec<FrameRef> = {
                let mut inner = shard.lock();
                if inner.dirty_count == 0 {
                    continue;
                }
                let mut v = Vec::new();
                for m in inner.frames_mut() {
                    if m.dirty {
                        m.dirty = false;
                        v.push(Arc::clone(&m.frame));
                    }
                }
                inner.dirty_count = 0;
                v
            };
            for frame in &dirty {
                let mut page = frame.write();
                // WAL before data, checked *under* the frame's write
                // lock: a concurrent updater either finished before we
                // acquired it (its page image is already appended, the
                // force below covers it) or is blocked until after the
                // store. Forcing to the buffered tail is cheap when
                // nothing is pending.
                if let Some(wal) = &self.wal {
                    // lint: allow(lock-across-io, WAL-before-data requires forcing under the frame write lock; the victim is unfixed so nothing else waits on it)
                    wal.force()?;
                }
                self.store.store(&mut page)?;
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Flushes dirty pages and drops every unfixed frame — used by cold-
    /// read experiments to measure device I/O without restarting.
    pub fn evict_all(&self) -> StorageResult<()> {
        self.flush_all()?;
        for shard in &self.shards {
            let mut inner = shard.lock();
            let victims: Vec<PageId> =
                inner.frames().filter(|m| m.fix_count == 0).map(|m| m.id).collect();
            for id in victims {
                inner.remove_frame(id);
            }
        }
        Ok(())
    }

    fn fix_frame(&self, id: PageId, for_update: bool) -> StorageResult<FrameRef> {
        {
            let mut inner = self.shard(id).lock();
            if let Some(m) = inner.get_mut(id) {
                m.fix_count += 1;
                let f = Arc::clone(&m.frame);
                if for_update {
                    inner.mark_dirty(id);
                }
                inner.touch(id);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(f);
            }
        }
        // Miss: load from device outside the pool lock, then install.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let page = probe::observed(ProbeEvent::PageLoad, || self.store.load(id))?;
        self.stats.pages_loaded.fetch_add(1, Ordering::Relaxed);
        let size = page.size();
        let mut inner = self.shard(id).lock();
        if let Some(m) = inner.get_mut(id) {
            // Someone installed it while we were loading.
            m.fix_count += 1;
            let f = Arc::clone(&m.frame);
            if for_update {
                inner.mark_dirty(id);
            }
            inner.touch(id);
            return Ok(f);
        }
        self.make_room(&mut inner, size.bytes())?;
        let f: FrameRef = new_frame(page);
        inner.insert_frame(id, Arc::clone(&f), for_update, size);
        Ok(f)
    }

    /// The modified-LRU core: evict least-recently-used *unfixed* pages
    /// until `need` more bytes fit within the (shard's) byte budget.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn make_room(&self, inner: &mut PoolInner, need: usize) -> StorageResult<()> {
        while inner.used_bytes + need > self.shard_capacity {
            let Some(vid) = inner.lru_victim() else {
                let unfixable: usize = inner
                    .frames()
                    .filter(|m| m.fix_count == 0)
                    .map(|m| m.size.bytes())
                    .sum();
                return Err(StorageError::BufferExhausted { needed: need, unfixable });
            };
            // lint: allow(error-hygiene, the victim id was read from the resident map under this same shard latch)
            let meta = inner.remove_frame(vid).expect("victim resident");
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            if meta.dirty {
                // WAL before data (steal policy: uncommitted changes may
                // be evicted, their undo records are already logged).
                if let Some(wal) = &self.wal {
                    if meta.recovery_lsn > wal.flushed_lsn() {
                        wal.force()?;
                    }
                }
                let mut page = meta.frame.write();
                self.store.store(&mut page)?;
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------------

/// Shared read access to a fixed page. Dropping the guard unfixes the page.
pub struct PageGuard {
    lock: Option<ArcRwLockReadGuard<RawRwLock, Page>>,
    // lockrank: buffer.0 — handle to the owning shard (`shards`), relocked on drop.
    pool: Arc<Mutex<PoolInner>>,
    id: PageId,
}

/// Exclusive write access to a fixed page. Dropping the guard unfixes it;
/// on a WAL-attached pool the drop also logs the page's after-image and
/// stamps the frame's `recovery_lsn`.
pub struct PageGuardMut {
    lock: Option<ArcRwLockWriteGuard<RawRwLock, Page>>,
    // lockrank: buffer.0 — handle to the owning shard (`shards`), relocked on drop.
    pool: Arc<Mutex<PoolInner>>,
    id: PageId,
    wal: Option<Arc<Wal>>,
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard").field("id", &self.id).finish_non_exhaustive()
    }
}

impl std::fmt::Debug for PageGuardMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuardMut").field("id", &self.id).finish_non_exhaustive()
    }
}

impl std::ops::Deref for PageGuard {
    type Target = Page;
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn deref(&self) -> &Page {
        // lint: allow(error-hygiene, the Option is only None after drop has run)
        self.lock.as_ref().expect("guard alive")
    }
}

impl std::ops::Deref for PageGuardMut {
    type Target = Page;
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn deref(&self) -> &Page {
        // lint: allow(error-hygiene, the Option is only None after drop has run)
        self.lock.as_ref().expect("guard alive")
    }
}

impl std::ops::DerefMut for PageGuardMut {
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn deref_mut(&mut self) -> &mut Page {
        // lint: allow(error-hygiene, the Option is only None after drop has run)
        self.lock.as_mut().expect("guard alive")
    }
}

impl PageGuard {
    pub fn page_id(&self) -> PageId {
        self.id
    }
}

impl PageGuardMut {
    pub fn page_id(&self) -> PageId {
        self.id
    }
}

fn unfix(pool: &Mutex<PoolInner>, id: PageId, recovery_lsn: Lsn) {
    let mut inner = pool.lock();
    if let Some(m) = inner.get_mut(id) {
        debug_assert!(m.fix_count > 0, "unfix without fix on {id}");
        m.fix_count = m.fix_count.saturating_sub(1);
        if recovery_lsn > m.recovery_lsn {
            m.recovery_lsn = recovery_lsn;
        }
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.lock.take();
        unfix(&self.pool, self.id, 0);
    }
}

impl Drop for PageGuardMut {
    fn drop(&mut self) {
        // Physical redo: log the page's after-image while we still hold
        // the frame exclusively, then record the LSN on the frame so
        // flush/eviction can enforce write-ahead. If a poisoned log
        // refuses the append, pin the frame at `Lsn::MAX`: the dirty
        // page can then never pass the write-ahead check, so it is
        // never stolen — the flush that eventually needs it fails
        // loudly instead of persisting a page whose redo was lost.
        let mut lsn: Lsn = 0;
        if let (Some(wal), Some(page)) = (&self.wal, self.lock.as_deref_mut()) {
            page.update_checksum();
            lsn = wal
                .append(WalPayload::PageImage { page: self.id, bytes: page.as_bytes() })
                .unwrap_or(Lsn::MAX);
        }
        self.lock.take();
        unfix(&self.pool, self.id, lsn);
    }
}

// ---------------------------------------------------------------------------
// PartitionedBuffer: the strawman baseline
// ---------------------------------------------------------------------------

/// Statically partitioned buffer: one independent plain-LRU pool per page
/// size. The byte budget is split across the five sizes by fixed fractions
/// chosen at construction. The paper: "not very flexible when reference
/// patterns change" — experiment E-BUF quantifies that.
pub struct PartitionedBuffer {
    store: Arc<dyn PageStore>,
    pools: Vec<(PageSize, BufferManager)>,
    stats: Arc<BufferStats>,
}

impl PartitionedBuffer {
    /// Splits `capacity_bytes` into five pools using `fractions` (one entry
    /// per [`PageSize::ALL`] position; should sum to ~1.0).
    pub fn new(store: Arc<dyn PageStore>, capacity_bytes: usize, fractions: [f64; 5]) -> Self {
        let pools = PageSize::ALL
            .iter()
            .zip(fractions.iter())
            .map(|(&size, &frac)| {
                let bytes = ((capacity_bytes as f64) * frac) as usize;
                // Every pool must hold at least one page of its size to be
                // usable at all.
                let bytes = bytes.max(size.bytes());
                (size, BufferManager::new(Arc::clone(&store), bytes))
            })
            .collect();
        PartitionedBuffer { store, pools, stats: Arc::new(BufferStats::default()) }
    }

    /// Equal fifths for each size class.
    pub fn new_equal(store: Arc<dyn PageStore>, capacity_bytes: usize) -> Self {
        Self::new(store, capacity_bytes, [0.2; 5])
    }

    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn pool_of(&self, id: PageId) -> StorageResult<&BufferManager> {
        let size = self.store.page_size_of(id.segment)?;
        // lint: allow(error-hygiene, all five page sizes are constructed in new and the set never changes)
        Ok(&self.pools.iter().find(|(s, _)| *s == size).expect("all sizes present").1)
    }

    pub fn fix(&self, id: PageId) -> StorageResult<PageGuard> {
        self.pool_of(id)?.fix(id)
    }

    pub fn fix_mut(&self, id: PageId) -> StorageResult<PageGuardMut> {
        self.pool_of(id)?.fix_mut(id)
    }

    pub fn fix_new(&self, id: PageId, ptype: PageType) -> StorageResult<PageGuardMut> {
        self.pool_of(id)?.fix_new(id, ptype)
    }

    pub fn discard(&self, id: PageId) -> StorageResult<()> {
        self.pool_of(id)?.discard(id)
    }

    pub fn flush_all(&self) -> StorageResult<()> {
        for (_, p) in &self.pools {
            p.flush_all()?;
        }
        Ok(())
    }

    /// Aggregated statistics across the five pools, recomputed on call.
    pub fn stats(&self) -> Arc<BufferStats> {
        self.stats.reset();
        for (_, p) in &self.pools {
            self.stats.add_from(&p.stats());
        }
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{BlockAddr, BlockDevice, SimDisk};

    /// Minimal PageStore over a SimDisk for buffer tests: segment n is file
    /// n; page sizes fixed per segment at construction.
    struct TestStore {
        disk: SimDisk,
        sizes: Vec<PageSize>,
    }

    impl TestStore {
        fn new(sizes: &[PageSize]) -> Arc<Self> {
            let disk = SimDisk::new();
            for (i, s) in sizes.iter().enumerate() {
                disk.create_file(i as u32, s.bytes()).unwrap();
            }
            Arc::new(TestStore { disk, sizes: sizes.to_vec() })
        }
    }

    impl PageStore for TestStore {
        fn load(&self, id: PageId) -> StorageResult<Page> {
            let size = self.page_size_of(id.segment)?;
            let mut buf = vec![0u8; size.bytes()];
            self.disk.read_block(BlockAddr::new(id.segment, id.page), &mut buf)?;
            Page::from_bytes(id, size, &buf)
        }

        fn store(&self, page: &mut Page) -> StorageResult<()> {
            page.update_checksum();
            let id = page.id();
            self.disk.write_block(BlockAddr::new(id.segment, id.page), page.as_bytes())
        }

        fn page_size_of(&self, segment: u32) -> StorageResult<PageSize> {
            self.sizes
                .get(segment as usize)
                .copied()
                .ok_or(StorageError::UnknownSegment(segment))
        }
    }

    fn id(seg: u32, page: u32) -> PageId {
        PageId::new(seg, page)
    }

    #[test]
    fn fix_new_then_read_back_after_eviction() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(store, 2 * 512); // room for 2 pages
        {
            let mut g = buf.fix_new(id(0, 0), PageType::Data).unwrap();
            g.write_payload(b"page zero").unwrap();
        }
        {
            let mut g = buf.fix_new(id(0, 1), PageType::Data).unwrap();
            g.write_payload(b"page one").unwrap();
        }
        // Force both originals out.
        let _ = buf.fix_new(id(0, 2), PageType::Data).unwrap();
        let _ = buf.fix_new(id(0, 3), PageType::Data).unwrap();
        assert!(!buf.is_resident(id(0, 0)));
        let g = buf.fix(id(0, 0)).unwrap();
        assert_eq!(g.payload(), b"page zero");
    }

    #[test]
    fn hits_and_misses_counted() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(store, 10 * 512);
        {
            let mut g = buf.fix_new(id(0, 0), PageType::Data).unwrap();
            g.write_payload(b"x").unwrap();
        }
        let _ = buf.fix(id(0, 0)).unwrap(); // hit
        let _ = buf.fix(id(0, 5)).unwrap(); // miss (zero page)
        let (h, m, _, _) = buf.stats().snapshot();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn fixed_pages_are_never_evicted() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(store, 2 * 512);
        let g0 = buf.fix_new(id(0, 0), PageType::Data).unwrap();
        let g1 = buf.fix_new(id(0, 1), PageType::Data).unwrap();
        // Pool is full of fixed pages; a third fix must fail.
        let err = buf.fix_new(id(0, 2), PageType::Data).unwrap_err();
        assert!(matches!(err, StorageError::BufferExhausted { .. }));
        drop(g0);
        drop(g1);
        assert!(buf.fix_new(id(0, 2), PageType::Data).is_ok());
    }

    #[test]
    fn mixed_sizes_in_one_pool() {
        let store = TestStore::new(&[PageSize::Half, PageSize::K8]);
        let buf = BufferManager::new(store, 8192 + 512);
        {
            let _small = buf.fix_new(id(0, 0), PageType::Data).unwrap();
        }
        {
            let _big = buf.fix_new(id(1, 0), PageType::Data).unwrap();
        }
        assert_eq!(buf.resident(), 2);
        assert_eq!(buf.used_bytes(), 8192 + 512);
        // Another 8K page must evict *both*? No: evicting the small page is
        // not enough, so modified LRU keeps evicting until room: both go.
        let _big2 = buf.fix_new(id(1, 1), PageType::Data).unwrap();
        assert!(buf.used_bytes() <= 8192 + 512);
        let (_, _, ev, _) = buf.stats().snapshot();
        assert!(ev >= 1, "eviction expected, got {ev}");
    }

    #[test]
    fn size_aware_eviction_frees_enough_for_large_page() {
        // Pool fits sixteen 1/2K pages; bringing in one 8K page must evict
        // all sixteen in LRU order.
        let store = TestStore::new(&[PageSize::Half, PageSize::K8]);
        let buf = BufferManager::new(store, 8192);
        for p in 0..16 {
            let _ = buf.fix_new(id(0, p), PageType::Data).unwrap();
        }
        assert_eq!(buf.resident(), 16);
        let _ = buf.fix_new(id(1, 0), PageType::Data).unwrap();
        assert_eq!(buf.resident(), 1);
        let (_, _, ev, _) = buf.stats().snapshot();
        assert_eq!(ev, 16);
    }

    #[test]
    fn lru_order_is_respected() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(store, 3 * 512);
        for p in 0..3 {
            let _ = buf.fix_new(id(0, p), PageType::Data).unwrap();
        }
        // Touch page 0 so page 1 becomes LRU.
        let _ = buf.fix(id(0, 0)).unwrap();
        let _ = buf.fix_new(id(0, 3), PageType::Data).unwrap();
        assert!(buf.is_resident(id(0, 0)));
        assert!(!buf.is_resident(id(0, 1)));
        assert!(buf.is_resident(id(0, 2)));
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let store = TestStore::new(&[PageSize::Half]);
        let disk_stats = store.disk.stats();
        let buf = BufferManager::new(Arc::clone(&store) as Arc<dyn PageStore>, 512);
        {
            let mut g = buf.fix_new(id(0, 0), PageType::Data).unwrap();
            g.write_payload(b"must survive").unwrap();
        }
        let w0 = disk_stats.snapshot().block_writes;
        let _ = buf.fix_new(id(0, 1), PageType::Data).unwrap();
        assert_eq!(disk_stats.snapshot().block_writes, w0 + 1);
        // And the content must be readable again.
        drop(buf);
        let store2: Arc<dyn PageStore> = store;
        let p = store2.load(id(0, 0)).unwrap();
        assert_eq!(p.payload(), b"must survive");
    }

    #[test]
    fn flush_all_persists_without_evicting() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(Arc::clone(&store) as Arc<dyn PageStore>, 4 * 512);
        {
            let mut g = buf.fix_new(id(0, 0), PageType::Data).unwrap();
            g.write_payload(b"checkpointed").unwrap();
        }
        buf.flush_all().unwrap();
        assert!(buf.is_resident(id(0, 0)));
        let p = (Arc::clone(&store) as Arc<dyn PageStore>).load(id(0, 0)).unwrap();
        assert_eq!(p.payload(), b"checkpointed");
    }

    #[test]
    fn discard_fixed_page_is_an_error() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(store, 4 * 512);
        let g = buf.fix_new(id(0, 0), PageType::Data).unwrap();
        assert!(matches!(buf.discard(id(0, 0)), Err(StorageError::FixConflict(_))));
        drop(g);
        assert!(buf.discard(id(0, 0)).is_ok());
        assert!(!buf.is_resident(id(0, 0)));
    }

    #[test]
    fn partitioned_buffer_isolates_size_classes() {
        let store = TestStore::new(&[PageSize::Half, PageSize::K8]);
        // 20% of 10*8192 = 16384 per class minimum logic: Half pool gets
        // 16384 bytes = 32 pages; K8 pool gets 16384 = 2 pages.
        let buf = PartitionedBuffer::new_equal(Arc::clone(&store) as Arc<dyn PageStore>, 81920);
        // Fill the K8 pool.
        let _ = buf.fix_new(id(1, 0), PageType::Data).unwrap();
        let _ = buf.fix_new(id(1, 1), PageType::Data).unwrap();
        let _ = buf.fix_new(id(1, 2), PageType::Data).unwrap();
        // Half-size pages are unaffected by K8 pressure.
        let _ = buf.fix_new(id(0, 0), PageType::Data).unwrap();
        let _ = buf.fix(id(0, 0)).unwrap();
        let s = buf.stats();
        let (h, _, ev, _) = s.snapshot();
        assert!(h >= 1);
        assert!(ev >= 1, "K8 pool must have evicted");
    }

    #[test]
    fn multi_shard_pool_never_exceeds_byte_budget() {
        // Regression: the old per-shard floor of 8192 bytes let a
        // multi-shard pool hold `shards * 8192` bytes regardless of the
        // requested budget. The shard count must be clamped instead.
        let store = TestStore::new(&[PageSize::Half]);
        let capacity = 2 * 8192;
        let buf = BufferManager::with_shards(store, capacity, 16);
        for p in 0..200 {
            let _ = buf.fix_new(id(0, p), PageType::Data).unwrap();
            assert!(
                buf.used_bytes() <= capacity,
                "page {p}: {} bytes resident exceeds budget {capacity}",
                buf.used_bytes()
            );
        }
    }

    #[test]
    fn tiny_budget_degrades_to_single_shard() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::with_shards(store, 4 * 512, 8);
        // A budget below one 8K page must behave like the exact
        // single-shard pool (fits 4 half-K pages).
        for p in 0..4 {
            let _ = buf.fix_new(id(0, p), PageType::Data).unwrap();
        }
        assert_eq!(buf.resident(), 4);
        assert_eq!(buf.used_bytes(), 4 * 512);
    }

    #[test]
    fn fix_call_and_load_accounting() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(store, 10 * 512);
        {
            let mut g = buf.fix_new(id(0, 0), PageType::Data).unwrap();
            g.write_payload(b"x").unwrap();
        }
        let _ = buf.fix(id(0, 0)).unwrap(); // hit: no load
        let _ = buf.fix(id(0, 5)).unwrap(); // miss: one load
        let d = buf.stats().detail();
        assert_eq!(d.fix_calls, 3, "fix_new + 2 fixes");
        assert_eq!(d.pages_loaded, 1, "only the miss touches the device");
        assert_eq!((d.hits, d.misses), (1, 1));
    }

    /// Reference model of the paper's modified LRU, implemented the way the
    /// pool used to be (tick counter + BTreeMap), driven through the same
    /// operation sequence as the real pool. Eviction order and residency
    /// must match exactly.
    struct ModelLru {
        capacity: usize,
        page_bytes: usize,
        clock: u64,
        ticks: std::collections::BTreeMap<u64, u32>,
        pages: HashMap<u32, u64>,
    }

    impl ModelLru {
        fn new(capacity: usize, page_bytes: usize) -> Self {
            ModelLru {
                capacity,
                page_bytes,
                clock: 0,
                ticks: std::collections::BTreeMap::new(),
                pages: HashMap::new(),
            }
        }

        /// Simulates one unfixed fix (hit-touch or miss-load + eviction).
        fn access(&mut self, page: u32) {
            self.clock += 1;
            if let Some(tick) = self.pages.remove(&page) {
                self.ticks.remove(&tick);
            } else {
                while (self.pages.len() + 1) * self.page_bytes > self.capacity {
                    let (&t, &victim) = self.ticks.iter().next().expect("victim");
                    self.ticks.remove(&t);
                    self.pages.remove(&victim);
                }
            }
            self.ticks.insert(self.clock, page);
            self.pages.insert(page, self.clock);
        }

        /// Pages from LRU to MRU.
        fn order(&self) -> Vec<u32> {
            self.ticks.values().copied().collect()
        }
    }

    #[test]
    fn lru_matches_reference_model() {
        // Property-style: a deterministic pseudo-random access pattern over
        // a page universe larger than the pool, checked op by op against
        // the tick/BTreeMap reference model the pool used to implement.
        let store = TestStore::new(&[PageSize::Half]);
        let capacity = 7 * 512;
        let buf = BufferManager::new(Arc::clone(&store) as Arc<dyn PageStore>, capacity);
        let mut model = ModelLru::new(capacity, 512);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for step in 0..4000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let page = (state % 23) as u32;
            let _ = buf.fix(id(0, page)).unwrap(); // guard dropped: unfixed
            model.access(page);
            let got: Vec<u32> =
                buf.shards[0].lock().lru_order().iter().map(|p| p.page).collect();
            assert_eq!(got, model.order(), "divergence at step {step}");
        }
    }

    #[test]
    fn guard_drop_unfixes() {
        let store = TestStore::new(&[PageSize::Half]);
        let buf = BufferManager::new(store, 512);
        {
            let _g = buf.fix_new(id(0, 0), PageType::Data).unwrap();
        }
        // After the guard is gone the page can be evicted.
        assert!(buf.fix_new(id(0, 1), PageType::Data).is_ok());
    }
}
