//! A small hand-rolled Rust tokenizer — just enough structure for the
//! lint rules: identifiers, punctuation, and literals with line numbers,
//! plus `//` comments captured separately (the annotation/allow channel).
//!
//! It understands the lexical shapes that would otherwise break a naive
//! scanner: nested block comments, string escapes, raw strings
//! (`r#"…"#`), byte strings, char literals vs lifetimes, raw identifiers
//! (`r#type`), and numeric literals that must not swallow `..` ranges.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `let`, `self`, …).
    Ident(String),
    /// Single punctuation character (`.`, `(`, `;`, `#`, …). Multi-char
    /// operators arrive as their constituent characters.
    Punct(char),
    /// Any string / byte-string literal (content irrelevant to the rules).
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Numeric literal.
    Num,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A `//` comment (doc comments included), trimmed of the slashes.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    // Consumes a quoted string body starting *after* the opening quote,
    // returning the index just past the closing quote.
    fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
        while i < b.len() {
            match b[i] {
                b'\\' => {
                    // Escapes skip the next byte — which may be a real
                    // newline (line-continuation `\` at end of line).
                    if b.get(i + 1) == Some(&b'\n') {
                        *line += 1;
                    }
                    i += 2;
                }
                b'"' => return i + 1,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        i
    }

    while i < b.len() {
        let c = b[i];
        // Raw (byte) strings: r"…", r#"…"#, br#"…"# etc. Handled ahead of
        // the match so the prefix probe binds directly.
        if matches!(c, b'r' | b'b') {
            if let Some((hashes, body)) = raw_string_hashes(b, i) {
                let l = line;
                let closer: Vec<u8> =
                    std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                let mut j = body;
                while j < b.len() {
                    if b[j] == b'\n' {
                        line += 1;
                    }
                    if b[j] == b'"' && b[j..].starts_with(&closer) {
                        j += closer.len();
                        break;
                    }
                    j += 1;
                }
                i = j;
                tokens.push(Token { tok: Tok::Str, line: l });
                continue;
            }
        }
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                comments.push(Comment {
                    text: src[start..j].trim_start_matches('/').trim().to_string(),
                    line,
                });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comments.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let l = line;
                i = skip_string(b, i + 1, &mut line);
                tokens.push(Token { tok: Tok::Str, line: l });
            }
            b'\'' => {
                // Char literal vs lifetime. `'\…'` and `'x'` are chars;
                // `'ident` (no closing quote right after) is a lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    i = j + 1;
                    tokens.push(Token { tok: Tok::Char, line });
                } else if b.get(i + 2) == Some(&b'\'') {
                    tokens.push(Token { tok: Tok::Char, line });
                    i += 3;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    tokens.push(Token { tok: Tok::Lifetime, line });
                    i = j;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                // Raw identifier `r#name`.
                if (c == b'r' || c == b'b') && b.get(i + 1) == Some(&b'#') {
                    i += 2;
                }
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(src[start..i].trim_start_matches("r#").to_string()),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.' {
                        // `1..n` is a range, not a float.
                        if b.get(j + 1) == Some(&b'.') {
                            break;
                        }
                        // `1.method()` — integer then method call.
                        if b.get(j + 1).is_some_and(|n| n.is_ascii_alphabetic() || *n == b'_') {
                            break;
                        }
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { tok: Tok::Num, line });
                i = j;
            }
            _ => {
                tokens.push(Token { tok: Tok::Punct(c as char), line });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments }
}

/// If position `i` starts a raw (byte) string (`r"`, `r#`, `br"`, `br#`),
/// returns `(hash_count, index_of_first_body_byte)`.
fn raw_string_hashes(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(i) => Some(i),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let l = lex("let a = 1; // lockrank: api.0\n// standalone\nfn f() {}\n");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "lockrank: api.0");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        assert_eq!(idents(r#"let s = "fn fake() { .lock() }"; x"#), vec!["let", "s", "x"]);
        assert_eq!(idents("let c = '{'; y"), vec!["let", "c", "y"]);
        assert_eq!(idents("let c = '\\n'; y"), vec!["let", "c", "y"]);
        assert_eq!(idents(r##"let r = r#"raw "quoted" body"#; z"##), vec!["let", "r", "z"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) {}");
        assert_eq!(l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count(), 2);
        assert_eq!(l.tokens.iter().filter(|t| t.tok == Tok::Char).count(), 0);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { a[i] = 1.5; }");
        let dots = l.tokens.iter().filter(|t| t.tok.is_punct('.')).count();
        assert_eq!(dots, 2, "both range dots survive");
        // `0`, `10`, and `1.5` — the float's dot is part of the number.
        assert_eq!(l.tokens.iter().filter(|t| t.tok == Tok::Num).count(), 3);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn line_numbers_advance_inside_literals() {
        let l = lex("let s = \"two\nlines\";\nnext");
        let next = l.tokens.iter().find(|t| t.tok.is_ident("next")).expect("next token");
        assert_eq!(next.line, 3);
    }
}
