//! LDL — the load definition language (Section 2.3).
//!
//! "We have defined a load definition language (LDL) used by the database
//! administrator to provide some 'hints' for the access system which is
//! responsible for the creation of appropriate storage structures,
//! tailored access paths, and special tuning mechanisms." The paper lists
//! the four mechanisms (access methods, partitions, sort orders,
//! physical clusters) but gives no concrete syntax; the statement forms
//! below are a documented reconstruction (DESIGN.md):
//!
//! ```text
//! CREATE ACCESS PATH ap_no ON solid (solid_no)
//! CREATE MULTIDIM ACCESS PATH ap_xyz ON point (x_coord, y_coord)
//! CREATE SORT ORDER so_len ON edge (length)
//! CREATE PARTITION p_head ON solid (solid_no, description)
//! CREATE ATOM_CLUSTER cl_brep ON brep (faces, edges, points) PAGESIZE 1K
//! DROP STRUCTURE ap_no
//! SET UPDATE POLICY DEFERRED
//! RECONCILE
//! ```

use crate::mql::lexer::{lex, ParseError, TokenKind};
use crate::mql::parser::Parser;

/// Page-size names accepted by `PAGESIZE` (mirrors the storage system's
/// five sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdlPageSize {
    Half,
    K1,
    K2,
    K4,
    K8,
}

/// One LDL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum LdlStatement {
    /// `CREATE ACCESS PATH name ON type (attrs…)` — B*-tree.
    CreateAccessPath { name: String, atom_type: String, attrs: Vec<String> },
    /// `CREATE MULTIDIM ACCESS PATH name ON type (attrs…)` — grid file.
    CreateMultidimAccessPath { name: String, atom_type: String, attrs: Vec<String> },
    /// `CREATE SORT ORDER name ON type (attrs…)`.
    CreateSortOrder { name: String, atom_type: String, attrs: Vec<String> },
    /// `CREATE PARTITION name ON type (attrs…)`.
    CreatePartition { name: String, atom_type: String, attrs: Vec<String> },
    /// `CREATE ATOM_CLUSTER name ON char_type (ref attrs…) [PAGESIZE s]`.
    CreateAtomCluster {
        name: String,
        char_type: String,
        member_attrs: Vec<String>,
        page_size: Option<LdlPageSize>,
    },
    /// `DROP STRUCTURE name`.
    DropStructure { name: String },
    /// `SET UPDATE POLICY IMMEDIATE|DEFERRED`.
    SetUpdatePolicy { deferred: bool },
    /// `RECONCILE` — apply all pending deferred updates.
    Reconcile,
}

/// Parses one LDL statement.
pub fn parse_ldl(src: &str) -> Result<LdlStatement, ParseError> {
    let run = || -> Result<LdlStatement, ParseError> {
        let tokens = lex(src)?;
        let mut p = LdlParser { p: Parser { tokens, pos: 0, params: Vec::new() } };
        let s = p.statement()?;
        p.p.expect_eof()?;
        Ok(s)
    };
    run().map_err(|e| e.locate(src))
}

/// Parses a script of LDL statements.
pub fn parse_ldl_script(src: &str) -> Result<Vec<LdlStatement>, ParseError> {
    let run = || -> Result<Vec<LdlStatement>, ParseError> {
        let tokens = lex(src)?;
        let mut p = LdlParser { p: Parser { tokens, pos: 0, params: Vec::new() } };
        let mut out = Vec::new();
        loop {
            while p.p.eat(&TokenKind::Semicolon) {}
            if p.p.peek() == &TokenKind::Eof {
                break;
            }
            out.push(p.statement()?);
        }
        Ok(out)
    };
    run().map_err(|e| e.locate(src))
}

struct LdlParser {
    p: Parser,
}

impl LdlParser {
    fn statement(&mut self) -> Result<LdlStatement, ParseError> {
        if self.p.eat_kw("create") {
            if self.p.eat_kw("access") {
                self.p.expect_kw("path")?;
                let (name, atom_type, attrs) = self.on_clause()?;
                return Ok(LdlStatement::CreateAccessPath { name, atom_type, attrs });
            }
            if self.p.eat_kw("multidim") {
                self.p.expect_kw("access")?;
                self.p.expect_kw("path")?;
                let (name, atom_type, attrs) = self.on_clause()?;
                return Ok(LdlStatement::CreateMultidimAccessPath { name, atom_type, attrs });
            }
            if self.p.eat_kw("sort") {
                self.p.expect_kw("order")?;
                let (name, atom_type, attrs) = self.on_clause()?;
                return Ok(LdlStatement::CreateSortOrder { name, atom_type, attrs });
            }
            if self.p.eat_kw("partition") {
                let (name, atom_type, attrs) = self.on_clause()?;
                return Ok(LdlStatement::CreatePartition { name, atom_type, attrs });
            }
            if self.p.eat_kw("atom_cluster") {
                let (name, char_type, member_attrs) = self.on_clause()?;
                let page_size = if self.p.eat_kw("pagesize") {
                    Some(self.page_size()?)
                } else {
                    None
                };
                return Ok(LdlStatement::CreateAtomCluster {
                    name,
                    char_type,
                    member_attrs,
                    page_size,
                });
            }
            return Err(ParseError::new(
                format!("unknown CREATE object '{}'", self.p.peek()),
                self.p.offset(),
            ));
        }
        if self.p.eat_kw("drop") {
            self.p.expect_kw("structure")?;
            let name = self.p.ident()?;
            return Ok(LdlStatement::DropStructure { name });
        }
        if self.p.eat_kw("set") {
            self.p.expect_kw("update")?;
            self.p.expect_kw("policy")?;
            if self.p.eat_kw("deferred") {
                return Ok(LdlStatement::SetUpdatePolicy { deferred: true });
            }
            self.p.expect_kw("immediate")?;
            return Ok(LdlStatement::SetUpdatePolicy { deferred: false });
        }
        if self.p.eat_kw("reconcile") {
            return Ok(LdlStatement::Reconcile);
        }
        Err(ParseError::new(
            format!("expected CREATE/DROP/SET/RECONCILE, found '{}'", self.p.peek()),
            self.p.offset(),
        ))
    }

    /// `name ON type (attr, …)`.
    fn on_clause(&mut self) -> Result<(String, String, Vec<String>), ParseError> {
        let name = self.p.ident()?;
        self.p.expect_kw("on")?;
        let atom_type = self.p.ident()?;
        self.p.expect(TokenKind::LParen)?;
        let mut attrs = vec![self.p.ident()?];
        while self.p.eat(&TokenKind::Comma) {
            attrs.push(self.p.ident()?);
        }
        self.p.expect(TokenKind::RParen)?;
        Ok((name, atom_type, attrs))
    }

    fn page_size(&mut self) -> Result<LdlPageSize, ParseError> {
        // Accept `1K`, `2K`, `4K`, `8K` (lexed as Int + Ident) and `HALF`.
        match self.p.bump() {
            TokenKind::Int(n) => {
                // The trailing K.
                let k = self.p.ident()?;
                if !k.eq_ignore_ascii_case("k") {
                    return Err(ParseError::new(
                        format!("expected K after page size, found '{k}'"),
                        self.p.offset(),
                    ));
                }
                match n {
                    1 => Ok(LdlPageSize::K1),
                    2 => Ok(LdlPageSize::K2),
                    4 => Ok(LdlPageSize::K4),
                    8 => Ok(LdlPageSize::K8),
                    other => Err(ParseError::new(
                        format!("unsupported page size {other}K"),
                        self.p.offset(),
                    )),
                }
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("half") => Ok(LdlPageSize::Half),
            other => Err(ParseError::new(
                format!("expected page size, found '{other}'"),
                self.p.offset(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_path() {
        let s = parse_ldl("CREATE ACCESS PATH ap_no ON solid (solid_no)").unwrap();
        assert_eq!(
            s,
            LdlStatement::CreateAccessPath {
                name: "ap_no".into(),
                atom_type: "solid".into(),
                attrs: vec!["solid_no".into()],
            }
        );
    }

    #[test]
    fn multidim_access_path() {
        let s =
            parse_ldl("CREATE MULTIDIM ACCESS PATH g ON point (x_coord, y_coord, z_coord)")
                .unwrap();
        assert!(matches!(
            s,
            LdlStatement::CreateMultidimAccessPath { attrs, .. } if attrs.len() == 3
        ));
    }

    #[test]
    fn sort_order_and_partition() {
        assert!(matches!(
            parse_ldl("CREATE SORT ORDER so ON edge (length)").unwrap(),
            LdlStatement::CreateSortOrder { .. }
        ));
        assert!(matches!(
            parse_ldl("CREATE PARTITION p ON solid (solid_no, description)").unwrap(),
            LdlStatement::CreatePartition { attrs, .. } if attrs.len() == 2
        ));
    }

    #[test]
    fn atom_cluster_with_page_size() {
        let s = parse_ldl("CREATE ATOM_CLUSTER cl ON brep (faces, edges, points) PAGESIZE 1K")
            .unwrap();
        assert!(matches!(
            s,
            LdlStatement::CreateAtomCluster { page_size: Some(LdlPageSize::K1), member_attrs, .. }
                if member_attrs.len() == 3
        ));
        let s = parse_ldl("CREATE ATOM_CLUSTER cl ON brep (faces) PAGESIZE HALF").unwrap();
        assert!(matches!(
            s,
            LdlStatement::CreateAtomCluster { page_size: Some(LdlPageSize::Half), .. }
        ));
    }

    #[test]
    fn drop_set_reconcile() {
        assert_eq!(
            parse_ldl("DROP STRUCTURE ap_no").unwrap(),
            LdlStatement::DropStructure { name: "ap_no".into() }
        );
        assert_eq!(
            parse_ldl("SET UPDATE POLICY DEFERRED").unwrap(),
            LdlStatement::SetUpdatePolicy { deferred: true }
        );
        assert_eq!(
            parse_ldl("SET UPDATE POLICY IMMEDIATE").unwrap(),
            LdlStatement::SetUpdatePolicy { deferred: false }
        );
        assert_eq!(parse_ldl("RECONCILE").unwrap(), LdlStatement::Reconcile);
    }

    #[test]
    fn script_parses_multiple() {
        let script = "CREATE ACCESS PATH a ON t (x);\nCREATE SORT ORDER b ON t (y);\nRECONCILE";
        assert_eq!(parse_ldl_script(script).unwrap().len(), 3);
    }

    #[test]
    fn bad_page_size_rejected() {
        assert!(parse_ldl("CREATE ATOM_CLUSTER c ON t (a) PAGESIZE 3K").is_err());
    }
}
