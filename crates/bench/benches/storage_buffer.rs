//! E-BUF — Section 3.3: one buffer for five page sizes. The paper's
//! modified LRU (single byte-budgeted pool) against the strawman
//! statically partitioned buffer, under *shifting reference patterns* —
//! the case the paper says static partitioning handles poorly.

use criterion::{criterion_group, criterion_main, Criterion};
use prima_bench::report;
use prima_storage::buffer::{BufferManager, PageStore, PartitionedBuffer};
use prima_storage::{BlockAddr, BlockDevice, Page, PageId, PageSize, SimDisk, StorageError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Five segments, one per page size; segment i = file i.
struct Store {
    disk: SimDisk,
}

impl Store {
    fn new() -> Arc<Self> {
        let disk = SimDisk::new();
        for (i, s) in PageSize::ALL.iter().enumerate() {
            disk.create_file(i as u32, s.bytes()).unwrap();
        }
        Arc::new(Store { disk })
    }
}

impl PageStore for Store {
    fn load(&self, id: PageId) -> Result<Page, StorageError> {
        let size = PageSize::ALL[id.segment as usize];
        let mut buf = vec![0u8; size.bytes()];
        self.disk.read_block(BlockAddr::new(id.segment, id.page), &mut buf)?;
        Page::from_bytes(id, size, &buf)
    }

    fn store(&self, page: &mut Page) -> Result<(), StorageError> {
        page.update_checksum();
        let id = page.id();
        self.disk.write_block(BlockAddr::new(id.segment, id.page), page.as_bytes())
    }

    fn page_size_of(&self, segment: u32) -> Result<PageSize, StorageError> {
        PageSize::ALL
            .get(segment as usize)
            .copied()
            .ok_or(StorageError::UnknownSegment(segment))
    }
}

/// A reference trace with a *shifting* working set: phase 1 hammers the
/// small-page segments, phase 2 the 8K segment, phase 3 mixes.
fn trace(len: usize, seed: u64) -> Vec<PageId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let phase = (i * 3) / len;
        let (seg, universe) = match phase {
            0 => (rng.gen_range(0..2u32), 60u32),  // 1/2K + 1K pages
            1 => (4u32, 24),                        // 8K pages
            _ => (rng.gen_range(0..5u32), 40),      // mixed
        };
        out.push(PageId::new(seg, rng.gen_range(0..universe)));
    }
    out
}

fn hit_ratio_report() {
    let capacity = 64 * 1024;
    let refs = trace(30_000, 9);
    // Modified LRU (paper).
    let store = Store::new();
    let buf = BufferManager::new(store, capacity);
    for &id in &refs {
        let _ = buf.fix(id).unwrap();
    }
    let modified = buf.stats().hit_ratio();
    // Static partition (strawman), equal fifths.
    let store = Store::new();
    let pbuf = PartitionedBuffer::new_equal(store, capacity);
    for &id in &refs {
        let _ = pbuf.fix(id).unwrap();
    }
    let partitioned = pbuf.stats().hit_ratio();
    report("BUF", "modified LRU, one pool (paper)", "hit_ratio", format!("{modified:.3}"));
    report("BUF", "static partition, five pools", "hit_ratio", format!("{partitioned:.3}"));
    report(
        "BUF",
        "shape check",
        "modified_lru_wins",
        if modified > partitioned { "yes" } else { "NO (investigate)" },
    );
}

fn bench_buffer(c: &mut Criterion) {
    hit_ratio_report();
    let refs = trace(5_000, 7);
    let mut g = c.benchmark_group("storage_buffer");
    g.sample_size(10);
    g.bench_function("modified_lru", |b| {
        b.iter(|| {
            let store = Store::new();
            let buf = BufferManager::new(store, 64 * 1024);
            for &id in &refs {
                let _ = buf.fix(id).unwrap();
            }
            buf.stats().snapshot()
        })
    });
    g.bench_function("static_partition", |b| {
        b.iter(|| {
            let store = Store::new();
            let buf = PartitionedBuffer::new_equal(store, 64 * 1024);
            for &id in &refs {
                let _ = buf.fix(id).unwrap();
            }
            buf.stats().snapshot()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
