//! BENCH-5 — snapshot reads vs locked reads under a long-hold writer.
//!
//! The MVCC headline number: N reader threads hammer point queries and
//! scans against one kernel while a single writer keeps the hot keys
//! dirty in long-held transactions (dirty → hold → commit → re-dirty).
//! Two series run the *same* reader loop on the two read paths:
//!
//! * `locked_read` — readers open an explicit transaction per query
//!   (`Session::begin`), so every read goes through the lock table and
//!   parks in the bounded FIFO queue whenever it touches something the
//!   writer holds — full scans park on every dirty cycle, point reads
//!   whenever they land on a dirtied key;
//! * `snapshot_read` — readers stay outside any transaction, so every
//!   read pins a version-store snapshot and never touches the lock
//!   table: reader throughput is independent of the writer's hold time.
//!
//! Reported per series: successful reader ops/sec, reader-visible
//! conflicts, and the lock/version counters over the measured window
//! (acquisitions prove the snapshot series generated zero lock traffic;
//! `snapshot_reads`/`versions_installed` prove the version store did the
//! work). One BENCHJSON record each — `scripts/perf_trajectory.sh`
//! collects them into BENCH_5.json.

use criterion::{criterion_group, criterion_main, Criterion};
use prima::{Prima, QueryOptions, RetryPolicy, Value};
use prima_bench::{report, report_metrics};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const DDL: &str = "
    CREATE ATOM_TYPE rec (
        rec_id : IDENTIFIER,
        n      : INTEGER,
        body   : CHAR_VAR )
    KEYS_ARE (n);
";

const READERS: usize = 4;
const KEYS: i64 = 8;

fn seeded_db() -> Prima {
    let db = Prima::builder().buffer_bytes(16 << 20).build_with_ddl(DDL).unwrap();
    for k in 0..KEYS {
        db.insert("rec", &[("n", Value::Int(k)), ("body", Value::Str("seed".into()))]).unwrap();
    }
    db
}

/// One contention window: the writer runs `cycles` dirty-hold-commit
/// cycles of `hold` each; the readers loop until the writer is done.
/// Returns `(successful reader ops, reader-visible conflicts)`.
fn run_window(db: &Prima, snapshot: bool, cycles: usize, hold: Duration) -> (u64, u64) {
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let session = db.session();
            for c in 0..cycles {
                for k in 0..KEYS / 2 {
                    session
                        .execute(&format!("MODIFY rec SET body = 'w{c}' WHERE n = {k}"))
                        .expect("writer DML");
                }
                std::thread::sleep(hold); // long-hold: X locks stay up
                session.commit().expect("writer commit");
            }
            done.store(true, Ordering::Release);
        });
        let readers: Vec<_> = (0..READERS)
            .map(|t| {
                let done = &done;
                let db = &db;
                s.spawn(move || {
                    // Conflicts are counted, not absorbed: the series
                    // difference *is* the measurement.
                    let mut session = db.session();
                    session.set_retry_policy(RetryPolicy::off());
                    let (mut ops, mut conflicts) = (0u64, 0u64);
                    let mut i = 0usize;
                    while !done.load(Ordering::Acquire) {
                        let q = if i.is_multiple_of(4) {
                            "SELECT ALL FROM rec".to_string()
                        } else {
                            format!("SELECT ALL FROM rec WHERE n = {}", (t + i) as i64 % KEYS)
                        };
                        i += 1;
                        if !snapshot {
                            session.begin().expect("begin");
                        }
                        match session.query(&q, &QueryOptions::default()) {
                            Ok(_) => {
                                ops += 1;
                                session.commit().expect("reader commit");
                            }
                            Err(e) if e.is_lock_conflict() => {
                                conflicts += 1;
                                session.rollback().expect("reader rollback");
                            }
                            Err(e) => panic!("reader failed hard: {e}"),
                        }
                    }
                    (ops, conflicts)
                })
            })
            .collect();
        writer.join().expect("writer panicked");
        readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .fold((0, 0), |(o, c), (ro, rc)| (o + ro, c + rc))
    })
}

fn run_series(c: &mut Criterion, series: &str, snapshot: bool) {
    let db = seeded_db();
    let mut g = c.benchmark_group("snapshot_read");
    g.sample_size(10);
    g.bench_function(format!("{series}_{READERS}r1w"), |b| {
        b.iter(|| run_window(&db, snapshot, 2, Duration::from_millis(5)))
    });
    g.finish();

    // Dedicated timed window outside Criterion sampling, so the
    // lock/version counters match the measured ops exactly.
    let locks_before = db.lock_stats();
    let versions_before = db.version_stats();
    let t0 = Instant::now();
    let (ops, conflicts) = run_window(&db, snapshot, 8, Duration::from_millis(20));
    let secs = t0.elapsed().as_secs_f64();
    let dl = db.lock_stats().since(&locks_before);
    let dv = db.version_stats().since(&versions_before);
    let ops_per_sec = ops as f64 / secs;

    report("BENCH-5", &format!("{series}/reader_ops_per_sec"), "ops/s", format!("{ops_per_sec:.0}"));
    report("BENCH-5", &format!("{series}/reader_conflicts"), "count", conflicts);
    report("BENCH-5", &format!("{series}/lock_acquisitions"), "count", dl.acquisitions);
    report("BENCH-5", &format!("{series}/lock_waits"), "count", dl.waits);
    report("BENCH-5", &format!("{series}/snapshot_reads"), "count", dv.snapshot_reads);
    println!(
        "BENCHJSON {{\"bench\":\"snapshot_read\",\"series\":\"{series}\",\
\"readers\":{READERS},\"reader_ops\":{ops},\"reader_ops_per_sec\":{ops_per_sec:.0},\
\"reader_conflicts\":{conflicts},\"lock_acquisitions\":{},\"lock_waits\":{},\
\"wait_us_total\":{},\"snapshots_opened\":{},\"snapshot_reads\":{},\
\"versions_installed\":{},\"versions_reclaimed\":{},\"max_chain_len\":{}}}",
        dl.acquisitions,
        dl.waits,
        dl.wait_us_total,
        dv.snapshots_opened,
        dv.snapshot_reads,
        dv.versions_installed,
        dv.versions_reclaimed,
        dv.max_chain_len,
    );
    report_metrics(&format!("snapshot_read/{series}"), &db);
}

fn bench_snapshot_read(c: &mut Criterion) {
    run_series(c, "locked_read", false);
    run_series(c, "snapshot_read", true);
}

criterion_group!(benches, bench_snapshot_read);
criterion_main!(benches);
