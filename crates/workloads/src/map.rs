//! Geographic map workload.
//!
//! Map handling is the third application area of Section 1. The schema
//! is a planar subdivision: map sheets contain regions bounded by border
//! segments between junction nodes — a border separates (up to) two
//! regions, the n:m/shared-subobject pattern again, plus coordinates for
//! multi-dimensional access (the grid-file access path's natural
//! customer).

use prima::{Prima, PrimaResult, Value};
use prima_mad::value::AtomId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// MAD-DDL for the map schema.
pub const MAP_DDL: &str = r#"
CREATE ATOM_TYPE sheet
  ( sheet_id : IDENTIFIER,
    sheet_no : INTEGER,
    name     : CHAR_VAR,
    regions  : SET_OF (REF_TO (region.sheet)) )
KEYS_ARE (sheet_no);

CREATE ATOM_TYPE region
  ( region_id : IDENTIFIER,
    region_no : INTEGER,
    land_use  : CHAR_VAR,
    area      : REAL,
    sheet     : REF_TO (sheet.regions),
    borders   : SET_OF (REF_TO (border.regions)) (3,VAR) )
KEYS_ARE (region_no);

CREATE ATOM_TYPE border
  ( border_id : IDENTIFIER,
    border_no : INTEGER,
    length    : REAL,
    regions   : SET_OF (REF_TO (region.borders)) (1,2),
    ends      : SET_OF (REF_TO (node.borders)) (2,2) )
KEYS_ARE (border_no);

CREATE ATOM_TYPE node
  ( node_id : IDENTIFIER,
    node_no : INTEGER,
    x       : REAL,
    y       : REAL,
    borders : SET_OF (REF_TO (border.ends)) (1,VAR) )
KEYS_ARE (node_no);

DEFINE MOLECULE TYPE sheet_map FROM sheet - region - border - node;
"#;

/// Workload parameters: a `grid × grid` mesh of square regions per sheet.
#[derive(Debug, Clone)]
pub struct MapConfig {
    pub sheets: usize,
    /// Regions per sheet side (grid × grid regions).
    pub grid: usize,
    pub seed: u64,
}

impl Default for MapConfig {
    fn default() -> Self {
        MapConfig { sheets: 1, grid: 4, seed: 11 }
    }
}

/// Generated ids.
#[derive(Debug, Clone, Default)]
pub struct MapStats {
    pub sheet_ids: Vec<AtomId>,
    pub region_ids: Vec<AtomId>,
    pub border_ids: Vec<AtomId>,
    pub node_ids: Vec<AtomId>,
}

/// Builds a PRIMA instance with the map schema.
pub fn open_db(buffer_bytes: usize) -> PrimaResult<Prima> {
    Prima::builder().buffer_bytes(buffer_bytes).build_with_ddl(MAP_DDL)
}

/// Populates `db` with meshes of square regions. Interior borders are
/// *shared* between two regions (non-disjoint molecules).
pub fn populate(db: &Prima, cfg: &MapConfig) -> PrimaResult<MapStats> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut s = MapStats::default();
    let g = cfg.grid;
    let mut next_region = 1i64;
    let mut next_border = 1i64;
    let mut next_node = 1i64;
    for sheet_no in 1..=cfg.sheets {
        let sheet = db.insert(
            "sheet",
            &[
                ("sheet_no", Value::Int(sheet_no as i64)),
                ("name", Value::Str(format!("sheet {sheet_no}"))),
            ],
        )?;
        s.sheet_ids.push(sheet);
        // Nodes at grid intersections.
        let mut nodes = vec![vec![AtomId::new(0, 0); g + 1]; g + 1];
        for (i, row) in nodes.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                let node = db.insert(
                    "node",
                    &[
                        ("node_no", Value::Int(next_node)),
                        ("x", Value::Real(i as f64 * 10.0 + rng.gen_range(-0.4..0.4))),
                        ("y", Value::Real(j as f64 * 10.0 + rng.gen_range(-0.4..0.4))),
                    ],
                )?;
                next_node += 1;
                *slot = node;
                s.node_ids.push(node);
            }
        }
        // Horizontal and vertical borders.
        let mut h_borders = vec![vec![AtomId::new(0, 0); g]; g + 1];
        let mut v_borders = vec![vec![AtomId::new(0, 0); g + 1]; g];
        for i in 0..=g {
            for j in 0..g {
                let b = db.insert(
                    "border",
                    &[
                        ("border_no", Value::Int(next_border)),
                        ("length", Value::Real(10.0)),
                        ("ends", Value::ref_set(vec![nodes[i][j], nodes[i][j + 1]])),
                    ],
                )?;
                next_border += 1;
                h_borders[i][j] = b;
                s.border_ids.push(b);
            }
        }
        for i in 0..g {
            for j in 0..=g {
                let b = db.insert(
                    "border",
                    &[
                        ("border_no", Value::Int(next_border)),
                        ("length", Value::Real(10.0)),
                        ("ends", Value::ref_set(vec![nodes[i][j], nodes[i + 1][j]])),
                    ],
                )?;
                next_border += 1;
                v_borders[i][j] = b;
                s.border_ids.push(b);
            }
        }
        // Regions referencing their four borders (interior borders end up
        // referenced by two regions: shared subobjects).
        for i in 0..g {
            for j in 0..g {
                let borders = vec![
                    h_borders[i][j],
                    h_borders[i + 1][j],
                    v_borders[i][j],
                    v_borders[i][j + 1],
                ];
                let land = ["forest", "water", "urban", "farm"][(i + j) % 4];
                let region = db.insert(
                    "region",
                    &[
                        ("region_no", Value::Int(next_region)),
                        ("land_use", Value::Str(land.into())),
                        ("area", Value::Real(100.0)),
                        ("sheet", Value::Ref(Some(sheet))),
                        ("borders", Value::ref_set(borders)),
                    ],
                )?;
                next_region += 1;
                s.region_ids.push(region);
            }
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let db = open_db(8 << 20).unwrap();
        let cfg = MapConfig { sheets: 1, grid: 3, seed: 1 };
        let s = populate(&db, &cfg).unwrap();
        assert_eq!(s.region_ids.len(), 9);
        assert_eq!(s.node_ids.len(), 16);
        assert_eq!(s.border_ids.len(), 2 * 3 * 4);
    }

    #[test]
    fn interior_borders_are_shared() {
        let db = open_db(8 << 20).unwrap();
        populate(&db, &MapConfig { sheets: 1, grid: 2, seed: 1 }).unwrap();
        // The border between region (0,0) and (0,1): referenced by both.
        let set = crate::exec::query(&db, "SELECT ALL FROM region-border WHERE region_no = 1").unwrap();
        assert_eq!(set.atoms_of("border").len(), 4);
        // Count borders referenced by exactly two regions via the inverse
        // direction.
        let set = crate::exec::query(&db, "SELECT ALL FROM border-region WHERE border_no = 2").unwrap();
        assert_eq!(set.len(), 1);
        let n_regions = set.atoms_of("region").len();
        assert!(n_regions <= 2, "a border separates at most two regions");
    }

    #[test]
    fn whole_sheet_molecule() {
        let db = open_db(8 << 20).unwrap();
        populate(&db, &MapConfig { sheets: 2, grid: 2, seed: 1 }).unwrap();
        let set = crate::exec::query(&db, "SELECT ALL FROM sheet_map WHERE sheet_no = 1").unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.atoms_of("region").len(), 4);
    }
}
