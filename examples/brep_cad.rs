//! CAD-session example: workstation-style object handling on PRIMA.
//!
//! Recreates the usage sketched in Section 4: an application layer checks
//! a molecule *out* into an object buffer, works on it locally, and
//! checks the modifications back in at commit time — with LDL tuning
//! (an atom cluster on the brep "main lanes") making the checkout fast,
//! and a nested transaction protecting the checkin.
//!
//! ```sh
//! cargo run --example brep_cad
//! ```

use prima::{Molecule, PrimaResult, QueryOptions, Value};
use prima_workloads::brep::{self, BrepConfig};

/// A minimal "object buffer": the checked-out molecule plus pending
/// attribute updates, applied wholesale at checkin.
struct ObjectBuffer {
    molecule: Molecule,
    pending: Vec<(prima::AtomId, Vec<(String, Value)>)>,
}

impl ObjectBuffer {
    /// Checkout through a prepared statement the caller built once: each
    /// checkout only binds the brep number and pulls one molecule from a
    /// streaming cursor — no re-parse, no re-plan.
    fn checkout(stmt: &mut prima::Prepared<'_>, brep_no: i64) -> PrimaResult<ObjectBuffer> {
        stmt.bind(&[Value::Int(brep_no)])?;
        let mut cursor = stmt.cursor(&QueryOptions::default())?;
        let molecule = cursor
            .fetch(1)?
            .into_iter()
            .next()
            .expect("brep exists");
        Ok(ObjectBuffer { molecule, pending: Vec::new() })
    }

    /// Local (buffered) edit — no DBMS call.
    fn edit(&mut self, id: prima::AtomId, attr: &str, value: Value) {
        self.pending.push((id, vec![(attr.to_string(), value)]));
    }

    /// Checkin: one nested transaction; any failure rolls back all edits.
    fn checkin(self, db: &prima::Prima) -> PrimaResult<usize> {
        let txn = db.begin()?;
        let n = self.pending.len();
        for (id, updates) in self.pending {
            let at = db.schema().atom_type(id.atom_type).expect("known type");
            let mut by_idx = Vec::with_capacity(updates.len());
            for (name, v) in updates {
                let idx = at.attribute_index(&name).ok_or_else(|| {
                    prima::PrimaError::BadStatement(format!("unknown attribute '{name}'"))
                })?;
                by_idx.push((idx, v));
            }
            txn.modify_atom(id, &by_idx)?;
        }
        txn.commit()?;
        Ok(n)
    }
}

fn main() -> PrimaResult<()> {
    let db = brep::open_db(16 << 20)?;
    brep::populate(&db, &BrepConfig::with_solids(20))?;

    // DBA tuning: cluster the brep main lanes so checkout is one chained
    // read per molecule; keep redundancy maintenance deferred.
    db.ldl(
        "CREATE ATOM_CLUSTER cl_brep ON brep (faces, edges, points) PAGESIZE 2K;
         CREATE ACCESS PATH ap_brep_no ON brep (brep_no);
         SET UPDATE POLICY DEFERRED",
    )?;

    // Checkout brep 7 into the workstation's object buffer.
    let session = db.session();
    let r = session.query(
        "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 7",
        &QueryOptions::new().traced(),
    )?;
    let trace = r.trace.expect("traced");
    println!(
        "checkout: {} atoms via {:?}, cluster used: {:?}",
        r.set.molecules[0].atom_count(),
        trace.root_access,
        trace.cluster_used
    );

    // The checkout statement is prepared once per session; every
    // checkout below only binds a brep number.
    let mut checkout_stmt =
        session.prepare("SELECT ALL FROM brep-face-edge-point WHERE brep_no = ?")?;
    let mut buffer = ObjectBuffer::checkout(&mut checkout_stmt, 7)?;

    // Local engineering work: scale every face area (imagine a resize).
    let face_node = 1; // brep-face-edge-point: node 1 = face
    let edits: Vec<prima::AtomId> = buffer
        .molecule
        .atoms_of_node(face_node)
        .iter()
        .map(|a| a.id)
        .collect();
    let schema_face = db.schema().type_by_name("face").unwrap();
    let sq = schema_face.attribute_index("square_dim").unwrap();
    for id in edits {
        let current = db.read(id)?;
        let old = current.values[sq].as_real().unwrap_or(1.0);
        buffer.edit(id, "square_dim", Value::Real(old * 2.0));
    }
    println!("buffered {} local edits (no DBMS calls)", buffer.pending.len());

    // Checkin at commit time.
    let n = buffer.checkin(&db)?;
    println!("checkin committed {n} modifications atomically");

    // Deferred maintenance is reconciled explicitly (e.g. at end of
    // session).
    let reconciled = db.reconcile()?;
    println!("reconciled {reconciled} deferred structure updates");

    // A failed checkin rolls everything back.
    let mut buffer = ObjectBuffer::checkout(&mut checkout_stmt, 7)?;
    let victim = buffer.molecule.atoms_of_node(face_node)[0].id;
    buffer.edit(victim, "square_dim", Value::Real(-1.0));
    buffer.edit(victim, "nonsense_attribute", Value::Int(0));
    let result = buffer.checkin(&db);
    println!(
        "broken checkin rejected: {}",
        if result.is_err() { "yes (rolled back)" } else { "no" }
    );
    let after = db.read(victim)?;
    println!("face value survived the failed checkin: {}", after.values[sq]);
    Ok(())
}
