//! E-F3.2: the atom-cluster mapping of Fig. 3.2 — logical view (a) →
//! one physical record (b) → page sequence (c), with chained I/O for the
//! whole cluster and relative addressing for single atoms.

use prima_workloads::brep::{self, BrepConfig};
use prima_workloads::exec;

fn tuned_db(n: usize) -> prima::Prima {
    let db = brep::open_db(32 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(n)).unwrap();
    db.ldl("CREATE ATOM_CLUSTER cl_brep ON brep (faces, edges, points) PAGESIZE 1K").unwrap();
    db
}

#[test]
fn cluster_materialises_molecule_atoms() {
    let db = tuned_db(3);
    let ct = db.access().cluster_type("cl_brep").unwrap();
    assert_eq!(ct.cluster_count(), 3, "one cluster per characteristic atom");
    let chars = ct.characteristic_atoms();
    let members = ct.members(chars[0]).unwrap();
    assert_eq!(members.len(), 6 + 12 + 8, "faces, edges, points of one box");
}

#[test]
fn molecule_query_reads_cluster_chained() {
    let db = tuned_db(5);
    db.storage().flush().unwrap();
    db.storage().io_stats().reset();
    let (set, trace) =
        exec::query_traced(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 3").unwrap();
    assert_eq!(set.len(), 1);
    assert_eq!(trace.cluster_used.as_deref(), Some("cl_brep"));
    let io = db.storage().io_stats().snapshot();
    assert!(io.chained_runs >= 1, "cluster read must be chained: {io:?}");
}

#[test]
fn cluster_beats_scattered_assembly_in_io() {
    // Build two identical databases; tune only one.
    let build = |tuned: bool| {
        let db = brep::open_db(512 * 1024).unwrap(); // small buffer: I/O visible
        brep::populate(&db, &BrepConfig::with_solids(30)).unwrap();
        if tuned {
            db.ldl("CREATE ATOM_CLUSTER cl ON brep (faces, edges, points) PAGESIZE 1K")
                .unwrap();
        }
        // Cold start: drop the buffer cache so assembly I/O hits the
        // device.
        db.storage().drop_cache().unwrap();
        db.storage().io_stats().reset();
        db
    };
    let with = build(true);
    let without = build(false);
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 17";
    let s1 = exec::query(&with, q).unwrap();
    let s2 = exec::query(&without, q).unwrap();
    assert_eq!(s1.atoms_of("point").len(), s2.atoms_of("point").len(), "same answer");
    let io_with = with.storage().io_stats().snapshot();
    let io_without = without.storage().io_stats().snapshot();
    assert!(
        io_with.seeks <= io_without.seeks,
        "clustered assembly must not seek more: {} vs {}",
        io_with.seeks,
        io_without.seeks
    );
    assert!(
        io_with.sim_time_ns < io_without.sim_time_ns,
        "clustered assembly must be faster on the device-time axis: {} vs {}",
        io_with.sim_time_ns,
        io_without.sim_time_ns
    );
}

#[test]
fn modifying_member_refreshes_cluster_on_reconcile() {
    let db = tuned_db(2);
    db.set_update_policy(prima::UpdatePolicy::Deferred);
    // Modify a face's area.
    let set = exec::query(&db, "SELECT ALL FROM brep-face WHERE brep_no = 1").unwrap();
    let face_node = set.node_id("face").unwrap();
    let victim = set.molecules[0].atoms_of_node(face_node)[0].id;
    db.modify(victim, &[("square_dim", prima::Value::Real(123.456))]).unwrap();
    assert!(!db.access().deferred_queue().is_empty(), "cluster refresh queued");
    db.reconcile().unwrap();
    // The cluster copy now shows the new value.
    let ct = db.access().cluster_type("cl_brep").unwrap();
    let ch = ct.characteristic_atoms()[0];
    let copy = ct.read_one(ch, victim).unwrap().expect("member present");
    assert_eq!(copy.values[1], prima::Value::Real(123.456));
}

#[test]
fn deleting_characteristic_atom_drops_cluster() {
    let db = tuned_db(2);
    let ct = db.access().cluster_type("cl_brep").unwrap();
    let chars = ct.characteristic_atoms();
    db.delete(chars[0]).unwrap();
    assert_eq!(ct.cluster_count(), 1);
    assert!(!ct.contains(chars[0]));
}

#[test]
fn single_member_access_uses_relative_addressing() {
    let db = tuned_db(1);
    let ct = db.access().cluster_type("cl_brep").unwrap();
    let ch = ct.characteristic_atoms()[0];
    let members = ct.members(ch).unwrap();
    db.storage().drop_cache().unwrap();
    db.storage().io_stats().reset();
    let one = ct.read_one(ch, members[20]).unwrap().unwrap();
    assert_eq!(one.id, members[20]);
    let io = db.storage().io_stats().snapshot();
    db.storage().io_stats().reset();
    let _ = ct.read_all(ch).unwrap();
    let io_all = db.storage().io_stats().snapshot();
    assert!(
        io.bytes_read < io_all.bytes_read,
        "single-atom access must read less than the whole sequence ({} vs {})",
        io.bytes_read,
        io_all.bytes_read
    );
}
