//! Query validation & modification (Section 3.1).
//!
//! "The query validation and modification checks the initial query for
//! syntactic and semantic correctness, performs the resolution of
//! predefined molecule types as well as the resolution of a meshed
//! molecule type into an equivalent hierarchical one which is easier to
//! cope with. Finally, it generates some internal representation of the
//! query, i.e. the processing plan."
//!
//! This module turns a parsed [`Query`] into a [`ResolvedQuery`]:
//!
//! 1. **Molecule-type resolution** — named molecule types in the FROM
//!    clause are inlined ([`resolve_molecule_types`]), keeping an *alias*
//!    so predicates can still address the molecule by its defined name
//!    (`piece_list (0).solid_no`).
//! 2. **Structure resolution** — every component is bound to an atom
//!    type, every edge to an association (disambiguated by `.attr` where
//!    given). The stored form is a tree: a meshed structure arrives from
//!    the parser already as its hierarchical reading.
//! 3. **Qualification pushdown** — conjuncts decidable on the root atom
//!    alone become a root SSA ("qualifications pushed down for
//!    efficiency reasons"); recursion seeds (`name (0).attr = c`) are
//!    pushed the same way. The rest stays as a residual predicate.
//! 4. **Select resolution** — the SELECT list is mapped onto per-node
//!    projections, including qualified projections (nested SELECTs).

use crate::error::{PrimaError, PrimaResult};
use crate::datasys::plan::{NodeProjection, ResolvedNode, ResolvedQuery, ResolvedSelect};
use prima_access::ssa::{CmpOp, Ssa};
use prima_mad::mql::{
    CompRef, CompareOp, Operand, Predicate, Query, SelectItem, SelectList,
};
use prima_mad::schema::{MoleculeGraph, MoleculeNode, Schema};

/// Maximum molecule-type inlining depth (cycle guard).
const MAX_INLINE_DEPTH: usize = 16;

/// Inlines named molecule types in a FROM structure. Returns the expanded
/// graph plus aliases `(molecule type name, node index where its root
/// landed)` — indices refer to pre-order numbering of the expanded graph.
pub fn resolve_molecule_types(
    schema: &Schema,
    graph: &MoleculeGraph,
) -> PrimaResult<(MoleculeGraph, Vec<(String, usize)>)> {
    let mut aliases = Vec::new();
    let root = inline_node(schema, &graph.root, 0, &mut aliases)?;
    // Re-number aliases by pre-order index in the final tree.
    let expanded = MoleculeGraph::new(root);
    let mut names = Vec::new();
    collect_preorder(&expanded.root, &mut names);
    let aliases = aliases
        .into_iter()
        .filter_map(|(name, marker)| {
            names.iter().position(|n| n.starts_with(&marker)).map(|i| (name, i))
        })
        .collect();
    Ok((expanded, aliases))
}

/// Unique marker assigned to inlined roots so aliases survive expansion.
fn marker(name: &str, depth: usize) -> String {
    format!("\u{1}{name}\u{1}{depth}")
}

fn inline_node(
    schema: &Schema,
    node: &MoleculeNode,
    depth: usize,
    aliases: &mut Vec<(String, String)>,
) -> PrimaResult<MoleculeNode> {
    if depth > MAX_INLINE_DEPTH {
        return Err(PrimaError::UnknownComponent(format!(
            "molecule type nesting deeper than {MAX_INLINE_DEPTH} (cycle?)"
        )));
    }
    if schema.type_by_name(&node.component).is_none() {
        if let Some(mt) = schema.molecule_type(&node.component) {
            // Inline: the defined structure replaces this node; this
            // node's via/recursive markers apply to the inlined root.
            let mut inlined = inline_node(schema, &mt.graph.root, depth + 1, aliases)?;
            inlined.via_attr = node.via_attr.clone().or(inlined.via_attr);
            inlined.recursive = inlined.recursive || node.recursive;
            // Children written *after* the molecule-type name attach to
            // the inlined root.
            for c in &node.children {
                inlined.children.push(inline_node(schema, c, depth + 1, aliases)?);
            }
            let m = marker(&mt.name, aliases.len());
            aliases.push((mt.name.clone(), m.clone()));
            // Temporarily tag the inlined root so we can find its
            // pre-order index afterwards; the tag is removed during
            // structure resolution (labels are re-derived from types).
            let mut tagged = inlined;
            tagged.component = format!("{}{}", m, tagged.component);
            return Ok(tagged);
        }
        return Err(PrimaError::UnknownComponent(node.component.clone()));
    }
    let mut out = node.clone();
    out.children = node
        .children
        .iter()
        .map(|c| inline_node(schema, c, depth + 1, aliases))
        .collect::<PrimaResult<_>>()?;
    Ok(out)
}

fn collect_preorder(node: &MoleculeNode, out: &mut Vec<String>) {
    out.push(node.component.clone());
    for c in &node.children {
        collect_preorder(c, out);
    }
}

/// Strips an inlining marker prefix, returning the clean component name.
fn clean_name(component: &str) -> &str {
    if let Some(rest) = component.strip_prefix('\u{1}') {
        // marker is "\u{1}name\u{1}depth" prefixed to the real name.
        if let Some(p) = rest.find('\u{1}') {
            let tail = &rest[p + 1..];
            let digits = tail.chars().take_while(char::is_ascii_digit).count();
            return &tail[digits..];
        }
    }
    component
}

/// Validates and resolves a parsed query against the schema.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub fn validate(schema: &Schema, query: &Query) -> PrimaResult<ResolvedQuery> {
    let (expanded, aliases) = resolve_molecule_types(schema, query.from.graph())?;
    // Flatten the tree into nodes with parent/child indices (pre-order).
    let mut nodes: Vec<ResolvedNode> = Vec::new();
    flatten(schema, &expanded.root, None, &mut nodes)?;
    // Label map: node labels (atom type name as written) + aliases.
    // First occurrence wins for duplicate labels.
    let root_attrs: Vec<String> = schema
        .atom_type(nodes[0].atom_type)
        // lint: allow(error-hygiene, root type was resolved a few lines up in this same pass)
        .expect("resolved root type")
        .attributes
        .iter()
        .map(|a| a.name.clone())
        .collect();
    let mut resolved = ResolvedQuery {
        nodes,
        aliases,
        select: ResolvedSelect::default(),
        residual: None,
        root_ssa: Ssa::True,
        root_attrs,
    };
    // Predicate split.
    if let Some(pred) = &query.predicate {
        let (root_terms, residual) = split_predicate(&resolved, pred)?;
        resolved.root_ssa = Ssa::and(root_terms);
        resolved.residual = residual;
        // Every referenced component must resolve.
        if let Some(res) = &resolved.residual {
            for r in res.comp_refs() {
                resolve_ref(&resolved, r, schema)?;
            }
        }
    }
    // Recursive structures need a root restriction (seed) — otherwise the
    // level-wise evaluation has no anchors.
    if resolved.nodes.iter().any(|n| n.recursive) && matches!(resolved.root_ssa, Ssa::True) {
        let name = resolved
            .aliases
            .first().map_or_else(|| resolved.nodes[0].label.clone(), |(n, _)| n.clone());
        return Err(PrimaError::MissingSeed(name));
    }
    // Select resolution.
    resolved.select = resolve_select(schema, &resolved, &query.select)?;
    Ok(resolved)
}

fn flatten(
    schema: &Schema,
    node: &MoleculeNode,
    parent: Option<usize>,
    out: &mut Vec<ResolvedNode>,
) -> PrimaResult<()> {
    let name = clean_name(&node.component).to_string();
    let at = schema
        .type_by_name(&name)
        .ok_or_else(|| PrimaError::UnknownComponent(name.clone()))?;
    let via = match parent {
        None => None,
        Some(p) => {
            let parent_type = out[p].atom_type;
            let assoc = schema
                .association_between(parent_type, at.id, node.via_attr.as_deref())
                .map_err(|e| PrimaError::NoAssociation {
                    from: out[p].label.clone(),
                    to: name.clone(),
                    detail: e.to_string(),
                })?;
            Some(assoc)
        }
    };
    let idx = out.len();
    out.push(ResolvedNode {
        label: name,
        atom_type: at.id,
        via,
        recursive: node.recursive,
        parent,
        children: Vec::new(),
    });
    if let Some(p) = parent {
        out[p].children.push(idx);
    }
    for c in &node.children {
        flatten(schema, c, Some(idx), out)?;
    }
    Ok(())
}

/// Resolves a component reference to `(node index, attribute index)`.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub fn resolve_ref(
    q: &ResolvedQuery,
    r: &CompRef,
    schema: &Schema,
) -> PrimaResult<(usize, usize)> {
    let node_idx = match &r.component {
        None => 0,
        Some(name) => q
            .node_by_label(name)
            .or_else(|| q.aliases.iter().find(|(n, _)| n == name).map(|(_, i)| *i))
            .ok_or_else(|| PrimaError::UnresolvedReference {
                reference: r.to_string(),
                detail: format!("no component '{name}' in FROM"),
            })?,
    };
    // lint: allow(error-hygiene, node type ids were interned into this schema by the resolve pass)
    let at = schema.atom_type(q.nodes[node_idx].atom_type).expect("resolved type");
    let attr = at.attribute_index(&r.attr).ok_or_else(|| PrimaError::UnresolvedReference {
        reference: r.to_string(),
        detail: format!("atom type '{}' has no attribute '{}'", at.name, r.attr),
    })?;
    Ok((node_idx, attr))
}

/// Splits a WHERE predicate into root-decidable SSA conjuncts and a
/// residual molecule predicate.
fn split_predicate(
    q: &ResolvedQuery,
    pred: &Predicate,
) -> PrimaResult<(Vec<Ssa>, Option<Predicate>)> {
    let conjuncts: Vec<Predicate> = match pred {
        Predicate::And(ts) => ts.clone(),
        other => vec![other.clone()],
    };
    let mut root_ssas = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        match to_root_ssa(q, &c) {
            Some(ssa) => root_ssas.push(ssa),
            None => residual.push(c),
        }
    }
    let residual = if residual.is_empty() { None } else { Some(Predicate::and(residual)) };
    Ok((root_ssas, residual))
}

/// Attempts to express a predicate as an SSA over the root atom: bare
/// attribute references, explicit references to the root component, and
/// level-0 references of a recursive molecule all qualify.
fn to_root_ssa(q: &ResolvedQuery, pred: &Predicate) -> Option<Ssa> {
    let is_root_ref = |r: &CompRef| -> bool {
        let comp_ok = match &r.component {
            None => true,
            Some(name) => {
                q.node_by_label(name) == Some(0)
                    || q.aliases.iter().any(|(n, idx)| n == name && *idx == 0)
            }
        };
        comp_ok && r.level.unwrap_or(0) == 0
    };
    match pred {
        Predicate::Compare { left: Operand::Ref(r), op, right: Operand::Literal(v) }
            if is_root_ref(r) =>
        {
            let attr = q.root_attr_index(&r.attr)?;
            Some(Ssa::Cmp { attr, op: convert_op(*op), value: v.clone() })
        }
        Predicate::Compare { left: Operand::Literal(v), op, right: Operand::Ref(r) }
            if is_root_ref(r) =>
        {
            let attr = q.root_attr_index(&r.attr)?;
            Some(Ssa::Cmp { attr, op: convert_op(*op).flip(), value: v.clone() })
        }
        // Parameter placeholders push down like literals: the plan keeps
        // an unbound comparison that `Ssa::bind` makes concrete per
        // execution (prepare once, bind + execute many).
        Predicate::Compare { left: Operand::Ref(r), op, right: Operand::Param(slot) }
            if is_root_ref(r) =>
        {
            let attr = q.root_attr_index(&r.attr)?;
            Some(Ssa::CmpParam { attr, op: convert_op(*op), slot: *slot })
        }
        Predicate::Compare { left: Operand::Param(slot), op, right: Operand::Ref(r) }
            if is_root_ref(r) =>
        {
            let attr = q.root_attr_index(&r.attr)?;
            Some(Ssa::CmpParam { attr, op: convert_op(*op).flip(), slot: *slot })
        }
        Predicate::IsEmpty(r) if is_root_ref(r) => {
            Some(Ssa::IsEmpty { attr: q.root_attr_index(&r.attr)? })
        }
        Predicate::NotEmpty(r) if is_root_ref(r) => {
            Some(Ssa::NotEmpty { attr: q.root_attr_index(&r.attr)? })
        }
        _ => None,
    }
}

pub(crate) fn convert_op(op: CompareOp) -> CmpOp {
    match op {
        CompareOp::Eq => CmpOp::Eq,
        CompareOp::Ne => CmpOp::Ne,
        CompareOp::Lt => CmpOp::Lt,
        CompareOp::Le => CmpOp::Le,
        CompareOp::Gt => CmpOp::Gt,
        CompareOp::Ge => CmpOp::Ge,
    }
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
fn resolve_select(
    schema: &Schema,
    q: &ResolvedQuery,
    select: &SelectList,
) -> PrimaResult<ResolvedSelect> {
    let mut per_node: Vec<NodeProjection> = match select {
        SelectList::All => vec![NodeProjection::All; q.nodes.len()],
        SelectList::Items(_) => vec![NodeProjection::Exclude; q.nodes.len()],
    };
    if let SelectList::Items(items) = select {
        let mut flat = Vec::new();
        flatten_items(items, &mut flat);
        for item in flat {
            match item {
                SelectItem::Group(_) => unreachable!("flattened"),
                SelectItem::Component(name) => {
                    // A whole component — or a root attribute when the
                    // name is not a component.
                    if let Some(idx) =
                        q.node_by_label(&name).or_else(|| alias_node(q, &name))
                    {
                        per_node[idx] = NodeProjection::All;
                    } else {
                        let attr = q.root_attr_index(&name).ok_or_else(|| {
                            PrimaError::UnresolvedReference {
                                reference: name.clone(),
                                detail: "neither a component nor a root attribute".into(),
                            }
                        })?;
                        add_attr(&mut per_node[0], attr);
                    }
                }
                SelectItem::Attr(r) => {
                    let (node, attr) = resolve_ref(q, &r, schema)?;
                    add_attr(&mut per_node[node], attr);
                }
                SelectItem::Qualified { component, query } => {
                    let node = q.node_by_label(&component).ok_or_else(|| {
                        PrimaError::UnresolvedReference {
                            reference: component.clone(),
                            detail: "qualified projection on unknown component".into(),
                        }
                    })?;
                    // The inner query must range over the same component
                    // type; its WHERE becomes a per-atom SSA, its SELECT a
                    // projection.
                    let inner_from = query.from.graph();
                    if inner_from.root.component != q.nodes[node].label
                        || !inner_from.root.children.is_empty()
                    {
                        return Err(PrimaError::BadStatement(format!(
                            "qualified projection for '{component}' must SELECT … FROM {component}"
                        )));
                    }
                    // lint: allow(error-hygiene, node type ids were interned into this schema by the resolve pass)
                    let at = schema.atom_type(q.nodes[node].atom_type).expect("resolved");
                    let ssa = match &query.predicate {
                        None => Ssa::True,
                        Some(p) => {
                            // The projection SSA is baked into the plan at
                            // validation time, before any binding — name
                            // the actual limitation instead of blaming
                            // decidability.
                            if !p.param_slots().is_empty() {
                                return Err(PrimaError::BadStatement(format!(
                                    "parameters are not supported in the qualified projection for '{component}' (use them in the WHERE clause instead)"
                                )));
                            }
                            predicate_to_atom_ssa(p, |attr| at.attribute_index(attr))
                                .ok_or_else(|| {
                                    PrimaError::BadStatement(format!(
                                        "qualified projection predicate for '{component}' must be decidable on single atoms"
                                    ))
                                })?
                        }
                    };
                    let attrs = match &query.select {
                        SelectList::All => None,
                        SelectList::Items(items) => {
                            let mut out = Vec::new();
                            let mut flat = Vec::new();
                            flatten_items(items, &mut flat);
                            for it in flat {
                                match it {
                                    SelectItem::Component(a) | SelectItem::Attr(CompRef { attr: a, .. }) => {
                                        let idx = at.attribute_index(&a).ok_or_else(|| {
                                            PrimaError::UnresolvedReference {
                                                reference: a.clone(),
                                                detail: format!(
                                                    "no attribute '{a}' on '{}'",
                                                    at.name
                                                ),
                                            }
                                        })?;
                                        out.push(idx);
                                    }
                                    other => {
                                        return Err(PrimaError::BadStatement(format!(
                                            "unsupported nested projection item {other:?}"
                                        )))
                                    }
                                }
                            }
                            Some(out)
                        }
                    };
                    per_node[node] = NodeProjection::Qualified { attrs, ssa };
                }
            }
        }
    }
    Ok(ResolvedSelect { per_node })
}

fn alias_node(q: &ResolvedQuery, name: &str) -> Option<usize> {
    q.aliases.iter().find(|(n, _)| n == name).map(|(_, i)| *i)
}

fn add_attr(p: &mut NodeProjection, attr: usize) {
    match p {
        NodeProjection::Attrs(attrs) => {
            if !attrs.contains(&attr) {
                attrs.push(attr);
            }
        }
        NodeProjection::Exclude => *p = NodeProjection::Attrs(vec![attr]),
        NodeProjection::All | NodeProjection::Qualified { .. } => {}
    }
}

fn flatten_items(items: &[SelectItem], out: &mut Vec<SelectItem>) {
    for i in items {
        match i {
            SelectItem::Group(inner) => flatten_items(inner, out),
            other => out.push(other.clone()),
        }
    }
}

/// Converts a single-component predicate into an [`Ssa`] (used by
/// qualified projections and quantifier bodies). Returns `None` when the
/// predicate references other components.
pub fn predicate_to_atom_ssa(
    pred: &Predicate,
    attr_index: impl Fn(&str) -> Option<usize> + Copy,
) -> Option<Ssa> {
    match pred {
        Predicate::Compare { left: Operand::Ref(r), op, right: Operand::Literal(v) } => {
            Some(Ssa::Cmp { attr: attr_index(&r.attr)?, op: convert_op(*op), value: v.clone() })
        }
        Predicate::Compare { left: Operand::Literal(v), op, right: Operand::Ref(r) } => {
            Some(Ssa::Cmp {
                attr: attr_index(&r.attr)?,
                op: convert_op(*op).flip(),
                value: v.clone(),
            })
        }
        Predicate::IsEmpty(r) => Some(Ssa::IsEmpty { attr: attr_index(&r.attr)? }),
        Predicate::NotEmpty(r) => Some(Ssa::NotEmpty { attr: attr_index(&r.attr)? }),
        Predicate::And(ts) => {
            let parts: Option<Vec<Ssa>> =
                ts.iter().map(|t| predicate_to_atom_ssa(t, attr_index)).collect();
            Some(Ssa::and(parts?))
        }
        Predicate::Or(ts) => {
            let parts: Option<Vec<Ssa>> =
                ts.iter().map(|t| predicate_to_atom_ssa(t, attr_index)).collect();
            Some(Ssa::Or(parts?))
        }
        Predicate::Not(t) => Some(Ssa::Not(Box::new(predicate_to_atom_ssa(t, attr_index)?))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::ddl::{load_script, FIG_2_3_DDL};
    use prima_mad::mql::parse_query;

    fn schema() -> Schema {
        let mut s = Schema::new();
        load_script(&mut s, FIG_2_3_DDL).unwrap();
        s
    }

    #[test]
    fn table_2_1a_resolves() {
        let s = schema();
        let q = parse_query("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713").unwrap();
        let r = validate(&s, &q).unwrap();
        assert_eq!(r.nodes.len(), 4);
        assert_eq!(r.nodes[0].label, "brep");
        assert_eq!(r.nodes[3].label, "point");
        // brep_no = 1713 pushed to the root SSA.
        assert!(matches!(r.root_ssa, Ssa::Cmp { .. }));
        assert!(r.residual.is_none());
        // Edge face->edge resolved through face.border.
        let via = r.nodes[2].via.unwrap();
        let face = s.type_by_name("face").unwrap();
        assert_eq!(via.from.attr, face.attribute_index("border").unwrap());
    }

    #[test]
    fn table_2_1b_resolves_recursion_and_seed() {
        let s = schema();
        let q = parse_query("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 4711")
            .unwrap();
        let r = validate(&s, &q).unwrap();
        // piece_list inlined: solid -(sub)- solid (recursive).
        assert_eq!(r.nodes.len(), 2);
        assert!(r.nodes[1].recursive);
        assert_eq!(r.nodes[1].via.unwrap().from.attr,
            s.type_by_name("solid").unwrap().attribute_index("sub").unwrap());
        // Seed became the root SSA.
        assert!(matches!(r.root_ssa, Ssa::Cmp { .. }));
        // Alias registered on the root.
        assert!(r.aliases.iter().any(|(n, i)| n == "piece_list" && *i == 0));
    }

    #[test]
    fn recursive_query_without_seed_rejected() {
        let s = schema();
        let q = parse_query("SELECT ALL FROM piece_list").unwrap();
        assert!(matches!(validate(&s, &q), Err(PrimaError::MissingSeed(_))));
    }

    #[test]
    fn table_2_1c_projection_on_root() {
        let s = schema();
        let q = parse_query("SELECT solid_no, description FROM solid WHERE sub = EMPTY").unwrap();
        let r = validate(&s, &q).unwrap();
        assert!(matches!(r.root_ssa, Ssa::IsEmpty { .. }));
        match &r.select.per_node[0] {
            NodeProjection::Attrs(attrs) => assert_eq!(attrs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table_2_1d_qualified_projection() {
        let s = schema();
        let q = parse_query(
            "SELECT edge, (point, face := SELECT face_id, square_dim FROM face WHERE square_dim > 1.9E4)
             FROM brep-edge (face, point)
             WHERE brep_no = 1713 AND EXISTS_AT_LEAST (2) edge: edge.length > 1.0E2",
        )
        .unwrap();
        let r = validate(&s, &q).unwrap();
        assert_eq!(r.nodes.len(), 4);
        let edge_node = r.node_by_label("edge").unwrap();
        let face_node = r.node_by_label("face").unwrap();
        assert!(matches!(r.select.per_node[edge_node], NodeProjection::All));
        assert!(matches!(r.select.per_node[face_node], NodeProjection::Qualified { .. }));
        assert!(matches!(r.select.per_node[0], NodeProjection::Exclude), "brep excluded");
        // Quantifier stays residual; brep_no pushed down.
        assert!(matches!(r.root_ssa, Ssa::Cmp { .. }));
        assert!(matches!(r.residual, Some(Predicate::ExistsAtLeast { .. })));
    }

    #[test]
    fn unknown_component_rejected() {
        let s = schema();
        let q = parse_query("SELECT ALL FROM widget").unwrap();
        assert!(matches!(validate(&s, &q), Err(PrimaError::UnknownComponent(_))));
    }

    #[test]
    fn unknown_attribute_in_predicate_rejected() {
        let s = schema();
        let q = parse_query("SELECT ALL FROM solid WHERE colour = 1").unwrap();
        // 'colour' is not a root attribute: not pushed down, and residual
        // validation rejects it.
        assert!(validate(&s, &q).is_err());
    }

    #[test]
    fn named_molecule_types_inline_transitively() {
        let s = schema();
        // brep_obj = brep - face_obj = brep - face - edge_obj = … - point
        let q = parse_query("SELECT ALL FROM brep_obj WHERE brep_no = 1").unwrap();
        let r = validate(&s, &q).unwrap();
        let labels: Vec<&str> = r.nodes.iter().map(|n| n.label.as_str()).collect();
        assert_eq!(labels, vec!["brep", "face", "edge", "point"]);
        assert!(r.aliases.iter().any(|(n, _)| n == "brep_obj"));
    }

    #[test]
    fn ambiguous_association_needs_via() {
        let s = schema();
        // solid-solid without .sub/.super is ambiguous.
        let q = parse_query("SELECT ALL FROM solid-solid WHERE solid_no = 1").unwrap();
        assert!(matches!(validate(&s, &q), Err(PrimaError::NoAssociation { .. })));
        let q = parse_query("SELECT ALL FROM solid.sub-solid WHERE solid_no = 1").unwrap();
        assert!(validate(&s, &q).is_ok());
    }
}
