//! # prima-mad — the Molecule-Atom Data model
//!
//! This crate defines the **MAD model** of the PRIMA paper (Section 2):
//! the type system, schema objects, typed values and the three languages —
//! the data definition language (**DDL**, Fig. 2.3), the **M**olecule
//! **Q**uery **L**anguage (**MQL**, Table 2.1) and the load definition
//! language (**LDL**, Section 2.3).
//!
//! The crate is deliberately *pure*: no storage, no I/O — just model and
//! language. The access system (`prima-access`) and the data system
//! (`prima`) consume these definitions.
//!
//! ## Model recap
//!
//! * An **atom** is a record with attributes of rich types
//!   ([`schema::AttrType`]): `IDENTIFIER` (surrogate), `REFERENCE`
//!   (typed logical pointer), scalars, `RECORD`, `ARRAY`, and the
//!   repeating groups `SET_OF`/`LIST_OF` with optional cardinality
//!   restrictions.
//! * An **association** is a *pair* of reference attributes maintaining
//!   each other as back-references; all relationship kinds (1:1, 1:n, n:m)
//!   are expressed this way (Fig. 2.2), symmetrically.
//! * A **molecule type** is a structure superimposed dynamically on atoms
//!   connected by associations; it may be named in the schema
//!   ([`schema::MoleculeType`]) or written inline in a query's
//!   `FROM`-clause, and may be **recursive**.

pub mod codec;
pub mod ddl;
pub mod ldl;
pub mod mql;
pub mod schema;
pub mod value;

pub use schema::{
    Association, AtomType, Attribute, AttrType, Cardinality, MoleculeGraph, MoleculeType,
    RefTarget, Schema, SchemaError,
};
pub use value::{AtomId, AtomTypeId, Value, ValueKind};
