//! Nested transactions.
//!
//! "We have decided to refine the concept of nested transactions \[Mo81\]
//! as a generic mechanism for all proposed uses of PRIMA" (Section 4):
//! fine-grained intra-transaction parallelism needs units of work that
//! can fail and retry independently — exactly what subtransactions give.
//!
//! The implementation follows Moss's rules on an atom-granularity lock
//! table:
//!
//! * a subtransaction may acquire a lock if every conflicting holder is
//!   an *ancestor*;
//! * on **commit**, a subtransaction's locks and undo log are inherited
//!   by its parent (they only become permanent when the top-level
//!   transaction commits);
//! * on **abort**, its undo log is applied in reverse — *selective
//!   in-transaction recovery*: sibling work is untouched.
//!
//! # Waiting, deadlocks, victims
//!
//! A conflicting lock request waits in the target's FIFO queue, bounded
//! by [`LockConfig::wait_timeout`] ([`TxnError::LockTimeout`] on expiry).
//! A wait-for-graph cycle check runs whenever a request enqueues; on a
//! cycle the member holding the fewest locks (ties: the youngest) is
//! aborted with [`TxnError::Deadlock`], and its rollback wakes the
//! survivors. The queue is capped per target — at the cap, requests
//! degrade to an immediate [`TxnError::LockConflict`] — and
//! [`LockConfig::no_wait`] restores pure fail-fast behavior, which the
//! parallel executor's "retry later" DU scheduling and single-threaded
//! interleaving tests rely on.
//!
//! The Moss interaction: ancestors never conflict, neither as holders nor
//! as waiters, so a subtransaction cannot wait on — or deadlock with —
//! its own ancestor chain; subcommit's lock transfer re-checks waiters
//! because merging a child's modes into the parent can make a parked
//! stranger grantable. Deadlock victims surface to whoever issued the
//! statement: `Session` retries auto-commit statements transparently
//! (rollback via the undo log, exponential backoff), explicit
//! transactions see the retryable error and decide.
//!
//! # Who locks, who doesn't: the version store
//!
//! The locking story above grew in three steps. PR 5 extended Moss
//! locking to retrieval — strict 2PL over every read, the airtight but
//! reader-hostile baseline. PR 6 made conflicts *civilised* (bounded
//! waits, deadlock victims, transparent retry) without making them
//! rarer. The [`mvcc`] version store removes the read-side conflicts
//! altogether: PRIMA's engineering workload is checkout → analyze →
//! checkin, and the long analyze phase is pure retrieval that must not
//! stall behind a concurrent checkin. Writers still run full Moss 2PL
//! against each other (a checkin is exactly as serialised as before,
//! and subtransaction version entries are inherited on subcommit just
//! like locks), but a read-only statement now registers a [`Snapshot`]
//! instead of taking locks: every base read resolves through the
//! version chains to the newest version committed before the snapshot —
//! the stable, committed state of the design the analysis started from.
//! Combined with PR 5's lazy WAL bracket (read-only transactions never
//! touch the log), a snapshot read is zero-log *and* zero-lock.
//!
//! The plumbing choice: [`ReadGuard`] — the hook the query path already
//! threads through root access, assembly, cursors and DML qualification
//! sub-reads — became a two-mode guard. In `Locking` mode it acquires
//! `Shared` locks as before (explicit transactions keep it: their reads
//! must see their own writes and stay serialisable); in `Snapshot` mode
//! the lock calls are no-ops and reads resolve through the store.

mod lock;
pub mod mvcc;
mod undo;

pub use lock::{LockConfig, LockMode, LockStats, LockStatsSnapshot, LockTable, LockTarget};
pub use mvcc::{Snapshot, VersionStats, VersionStatsSnapshot, VersionStore};
pub use undo::UndoOp;

use crate::error::PrimaResult;
use parking_lot::{rank, Mutex, RwLock};
use prima_access::{AccessSystem, Atom};
use prima_mad::value::{AtomId, AtomTypeId, Value};
use prima_storage::{Wal, WalPayload};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Transaction-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// Another (non-ancestor) transaction holds a conflicting lock and
    /// waiting is disabled (or the target's wait queue is full); the
    /// caller decides between rollback and retry.
    LockConflict { target: LockTarget, holder: TxnId },
    /// The bounded wait for a conflicting lock expired without a grant.
    LockTimeout { target: LockTarget, waited: std::time::Duration },
    /// The request closed a wait-for cycle and `victim` was chosen to
    /// break it. `victim` is always the transaction receiving this error.
    Deadlock { victim: TxnId, target: LockTarget },
    /// Unknown or already finished transaction.
    NotActive(TxnId),
    /// A parent cannot commit while children are active.
    ChildrenActive(TxnId),
    /// Access-system failure while applying or undoing work.
    Access(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::LockConflict { target, holder } => {
                write!(f, "lock conflict on {target} held by {holder}")
            }
            TxnError::LockTimeout { target, waited } => {
                write!(f, "lock wait on {target} timed out after {waited:?}")
            }
            TxnError::Deadlock { victim, target } => {
                write!(f, "deadlock detected on {target}; {victim} chosen as victim")
            }
            TxnError::NotActive(t) => write!(f, "{t} is not active"),
            TxnError::ChildrenActive(t) => write!(f, "{t} has active children"),
            TxnError::Access(e) => write!(f, "access error in transaction: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

struct TxnState {
    parent: Option<TxnId>,
    children: Vec<TxnId>,
    undo: Vec<UndoOp>,
    /// Whether this (top-level) transaction's WAL bracket is open, i.e.
    /// its `TxnBegin` has been appended. Written lazily with the first
    /// undo record: read-only transactions (every query-path txn) leave
    /// no trace in the log and skip the commit record *and its force*
    /// entirely — a reader session's commit costs no device I/O.
    wal_open: bool,
}

/// The transaction manager: lock table plus transaction tree.
///
/// On a durable kernel (storage with a [`Wal`]) the manager additionally
/// write-ahead-logs transaction brackets and undo records: a top-level
/// begin/commit/abort appends the matching record, commit *forces* the
/// log (that is the durability point of `Session::commit`), and every
/// manipulation appends its serialised [`UndoOp`] **before** the
/// operation touches a page — so a forced log prefix never contains a
/// page image without the undo that can reverse it.
pub struct TxnManager {
    sys: Arc<AccessSystem>,
    locks: LockTable,
    /// Version store for lock-free snapshot reads. Volatile: a restart
    /// builds a fresh (empty) one — the WAL undo path already clears
    /// uncommitted versions from base storage, so recovery owes the
    /// store nothing.
    versions: Arc<VersionStore>,
    // lockrank: txn.1 — active-transaction table; taken inside the gate
    // by begin, and held across WAL undo appends (txn < walio).
    active: Mutex<HashMap<TxnId, TxnState>>,
    next: AtomicU64,
    wal: Option<Arc<Wal>>,
    /// Checkpoint gate: [`TxnManager::begin`] holds it shared,
    /// [`TxnManager::quiesced`] exclusively — so "no active
    /// transactions" can be checked without racing new begins.
    // lockrank: txn.0
    gate: RwLock<()>,
}

impl TxnManager {
    /// Manager with the default bounded-wait [`LockConfig`].
    pub fn new(sys: Arc<AccessSystem>) -> Arc<TxnManager> {
        Self::with_config(sys, LockConfig::default())
    }

    pub fn with_config(sys: Arc<AccessSystem>, config: LockConfig) -> Arc<TxnManager> {
        let wal = sys.storage().wal().cloned();
        Arc::new(TxnManager {
            sys,
            locks: LockTable::with_config(config),
            versions: VersionStore::new(),
            active: Mutex::new_ranked(HashMap::new(), rank::TXN + 1),
            next: AtomicU64::new(1),
            wal,
            gate: RwLock::new_ranked((), rank::TXN),
        })
    }

    /// Starts a (sub)transaction.
    pub fn begin(self: &Arc<Self>, parent: Option<TxnId>) -> Result<Transaction, TxnError> {
        // Blocks while a checkpoint holds the gate exclusively.
        let _gate = self.gate.read();
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        let mut active = self.active.lock();
        if let Some(p) = parent {
            let pstate = active.get_mut(&p).ok_or(TxnError::NotActive(p))?;
            pstate.children.push(id);
        }
        active.insert(
            id,
            TxnState { parent, children: Vec::new(), undo: Vec::new(), wal_open: false },
        );
        drop(active);
        // No WAL bracket yet: `TxnBegin` is appended lazily with the
        // first undo record (see [`TxnManager::log_undo`]), so read-only
        // transactions never touch the log.
        Ok(Transaction { id, mgr: Arc::clone(self), finished: false })
    }

    /// Ancestor chain of `t` (inclusive).
    fn ancestors(&self, t: TxnId) -> Vec<TxnId> {
        let active = self.active.lock();
        let mut out = vec![t];
        let mut cur = t;
        while let Some(state) = active.get(&cur) {
            match state.parent {
                Some(p) => {
                    out.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        out
    }

    fn push_undo(&self, t: TxnId, op: UndoOp) -> Result<(), TxnError> {
        let mut active = self.active.lock();
        let state = active.get_mut(&t).ok_or(TxnError::NotActive(t))?;
        state.undo.push(op);
        Ok(())
    }

    /// Appends `op` to the WAL, tagged with `t`'s *top-level* ancestor
    /// (restart recovery knows only top-level winners and losers). Must
    /// run before the operation dirties any page — see the struct docs.
    /// The first undo record of a top-level transaction opens its WAL
    /// bracket (`TxnBegin`) on the way. Fails when the log refuses the
    /// append (poisoned after a device error): the write must not
    /// proceed, since its undo could never become durable.
    fn log_undo(&self, t: TxnId, op: &UndoOp) -> prima_storage::StorageResult<()> {
        if let Some(wal) = &self.wal {
            let top = self.ancestors(t).last().copied().unwrap_or(t);
            {
                let mut active = self.active.lock();
                if let Some(state) = active.get_mut(&top) {
                    if !state.wal_open {
                        // Appended under the active-set lock so the
                        // bracket is opened exactly once even when
                        // parallel subtransactions log concurrently.
                        wal.append(WalPayload::TxnBegin { txn: top.0 })?;
                        state.wal_open = true;
                    }
                }
            }
            wal.append(WalPayload::Undo { txn: top.0, payload: &op.encode() })?;
        }
        Ok(())
    }

    /// Shared atom lock — the read-path granule.
    fn lock_atom_shared(&self, t: TxnId, atom: AtomId) -> Result<(), TxnError> {
        let ancestors = self.ancestors(t);
        self.locks.acquire(t, &ancestors, LockTarget::Atom(atom), LockMode::Shared)
    }

    /// Exclusive atom lock. Every atom-exclusive acquisition first
    /// announces `IntentExclusive` on the atom's type extension, so a
    /// concurrent scan of that type (which holds the extension `Shared`)
    /// conflicts even when it would have filtered the written atom out —
    /// an uncommitted write is *never* observable, not even as a changed
    /// qualification outcome or a missing scan row.
    fn lock_atom_exclusive(&self, t: TxnId, atom: AtomId) -> Result<(), TxnError> {
        let ancestors = self.ancestors(t);
        self.locks.acquire(
            t,
            &ancestors,
            LockTarget::Extension(atom.atom_type),
            LockMode::IntentExclusive,
        )?;
        self.locks.acquire(t, &ancestors, LockTarget::Atom(atom), LockMode::Exclusive)
    }

    /// Shared extension lock — taken by root access (scan, key lookup,
    /// access path, partition) before it inspects the type's atoms.
    fn lock_extension_shared(&self, t: TxnId, ty: AtomTypeId) -> Result<(), TxnError> {
        let ancestors = self.ancestors(t);
        self.locks.acquire(t, &ancestors, LockTarget::Extension(ty), LockMode::Shared)
    }

    /// The lock table (diagnostics: table size, maintenance cost).
    pub fn lock_table(&self) -> &LockTable {
        &self.locks
    }

    /// The version store — snapshot registration for readers,
    /// [`VersionStatsSnapshot`] observability for everyone.
    pub fn versions(&self) -> &Arc<VersionStore> {
        &self.versions
    }

    /// A locking [`ReadGuard`] acquiring read locks on behalf of `t` —
    /// handed to the query path (root access, vertical assembly,
    /// cursors, DML qualification) so every atom that can flow into a
    /// result is covered by a `Shared` lock under `t`.
    pub fn read_guard(&self, t: TxnId) -> ReadGuard<'_> {
        ReadGuard { inner: GuardInner::Locking { mgr: self, txn: t } }
    }

    // -----------------------------------------------------------------
    // Transactional atom operations
    // -----------------------------------------------------------------

    fn read_atom(&self, t: TxnId, id: AtomId) -> Result<Atom, TxnError> {
        self.lock_atom_shared(t, id)?;
        self.sys.read_atom(id, None).map_err(|e| TxnError::Access(e.to_string()))
    }

    fn insert_atom(
        &self,
        t: TxnId,
        atom_type: AtomTypeId,
        values: Vec<Value>,
    ) -> Result<AtomId, TxnError> {
        // The insert changes the type's extension: announce it before any
        // page is touched so concurrent scans conflict instead of missing
        // (or seeing) the uncommitted atom.
        {
            let ancestors = self.ancestors(t);
            self.locks.acquire(
                t,
                &ancestors,
                LockTarget::Extension(atom_type),
                LockMode::IntentExclusive,
            )?;
        }
        // Referenced atoms receive implicit back-reference updates: lock
        // them exclusively first.
        for v in &values {
            for target in v.referenced_ids() {
                self.lock_atom_exclusive(t, target)?;
            }
        }
        // The pre-write hook appends the undo record — and installs the
        // "did not exist yet" version entry — once the surrogate exists
        // but before the first page image of this insert, so a snapshot
        // scan that catches the new atom in base resolves it invisible.
        let id = self
            .sys
            .insert_atom_with_hook(atom_type, values, |id| {
                self.log_undo(t, &UndoOp::UndoInsert { id })
                    .map_err(prima_access::AccessError::Storage)?;
                self.versions.install(t, id, None);
                Ok(())
            })
            .map_err(|e| TxnError::Access(e.to_string()))?;
        self.lock_atom_exclusive(t, id)?;
        self.push_undo(t, UndoOp::UndoInsert { id })?;
        Ok(id)
    }

    fn modify_atom(
        &self,
        t: TxnId,
        id: AtomId,
        updates: &[(usize, Value)],
    ) -> Result<(), TxnError> {
        self.lock_atom_exclusive(t, id)?;
        let before = self.sys.read_atom(id, None).map_err(|e| TxnError::Access(e.to_string()))?;
        // Lock atoms whose back-references will change.
        for (i, v) in updates {
            for target in before.values.get(*i).map(prima_mad::Value::referenced_ids).unwrap_or_default()
            {
                self.lock_atom_exclusive(t, target)?;
            }
            for target in v.referenced_ids() {
                self.lock_atom_exclusive(t, target)?;
            }
        }
        let old: Vec<(usize, Value)> = updates
            .iter()
            .map(|(i, _)| (*i, before.values.get(*i).cloned().unwrap_or(Value::Null)))
            .collect();
        // Undo before do: the WAL record precedes every page image. The
        // version entry follows the same discipline — installed before
        // the base mutation, so a snapshot reader that catches the new
        // base value always finds the before-image that corrects it.
        let undo = UndoOp::UndoModify { id, old };
        self.log_undo(t, &undo).map_err(|e| TxnError::Access(e.to_string()))?;
        self.versions.install(t, id, Some(before));
        self.sys.modify_atom(id, updates).map_err(|e| TxnError::Access(e.to_string()))?;
        self.push_undo(t, undo)?;
        Ok(())
    }

    fn delete_atom(&self, t: TxnId, id: AtomId) -> Result<(), TxnError> {
        self.lock_atom_exclusive(t, id)?;
        let before = self.sys.read_atom(id, None).map_err(|e| TxnError::Access(e.to_string()))?;
        for v in &before.values {
            for target in v.referenced_ids() {
                self.lock_atom_exclusive(t, target)?;
            }
        }
        // Undo before do, as for modify — version entry included.
        let undo = UndoOp::UndoDelete { atom: before.clone() };
        self.log_undo(t, &undo).map_err(|e| TxnError::Access(e.to_string()))?;
        self.versions.install(t, id, Some(before));
        self.sys.delete_atom(id).map_err(|e| TxnError::Access(e.to_string()))?;
        self.push_undo(t, undo)?;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Commit / abort
    // -----------------------------------------------------------------

    fn commit(&self, t: TxnId) -> Result<(), TxnError> {
        let (parent, wal_open) = {
            let active = self.active.lock();
            let state = active.get(&t).ok_or(TxnError::NotActive(t))?;
            if !state.children.is_empty() {
                return Err(TxnError::ChildrenActive(t));
            }
            (state.parent, state.wal_open)
        };
        if parent.is_none() && wal_open {
            // Top-level durability point, reached while the transaction
            // still counts as active (a quiescing checkpoint cannot slip
            // between the force and the bookkeeping below). On a durable
            // kernel `Wal::commit` appends the commit record and returns
            // only once a device force covers it — the cross-session
            // group-commit point: everything buffered since the last
            // force, possibly several sessions' records, goes to the
            // device in one sequential append, and concurrent committers
            // share that one force (leader/follower coordination inside
            // the WAL). Read-only transactions (`wal_open` false — no
            // bracket, no undo, no page image) have nothing to make
            // durable and skip both the record and the force.
            if let Some(wal) = &self.wal {
                wal.commit(t.0).map_err(|e| TxnError::Access(e.to_string()))?;
            }
        }
        let undo = {
            let mut active = self.active.lock();
            // Validated under this same lock at function entry; if it
            // vanished since (it cannot — only the owner removes it),
            // surface the error rather than panicking.
            let state = active.remove(&t).ok_or(TxnError::NotActive(t))?;
            if let Some(p) = state.parent {
                if let Some(ps) = active.get_mut(&p) {
                    ps.children.retain(|c| *c != t);
                }
            }
            state.undo
        };
        match parent {
            Some(p) => {
                // Moss: locks, undo and version entries are inherited by
                // the parent.
                self.locks.transfer(t, p);
                self.versions.transfer(t, p);
                let mut active = self.active.lock();
                if let Some(ps) = active.get_mut(&p) {
                    ps.undo.extend(undo);
                }
            }
            None => {
                // Stamp the version entries with this commit's position
                // (after the durability point: a failed force leaves the
                // transaction active and its versions uncommitted), then
                // release the locks.
                self.versions.commit_stamp(t);
                self.locks.release_all(t);
            }
        }
        Ok(())
    }

    fn abort(&self, t: TxnId) -> Result<(), TxnError> {
        // Abort children first (deepest-first).
        let children: Vec<TxnId> = {
            let active = self.active.lock();
            match active.get(&t) {
                Some(s) => s.children.clone(),
                None => return Err(TxnError::NotActive(t)),
            }
        };
        for c in children {
            self.abort(c)?;
        }
        // Selective in-transaction recovery: apply undo in reverse,
        // *before* the transaction leaves the active set — a quiescing
        // checkpoint must never observe a half-rolled-back kernel as
        // idle (it would flush the partial state and truncate the undo
        // records that could finish the job after a crash).
        let (parent, undo, wal_open) = {
            let active = self.active.lock();
            let state = active.get(&t).ok_or(TxnError::NotActive(t))?;
            (state.parent, state.undo.clone(), state.wal_open)
        };
        for op in undo.iter().rev() {
            op.apply(&self.sys).map_err(|e| TxnError::Access(e.to_string()))?;
        }
        // Retire this transaction's version entries now that base storage
        // is restored. The store stamps rather than deletes them: a
        // snapshot reader that caught a dirty base value mid-rollback
        // still resolves to the correct before-image.
        self.versions.rollback(t);
        // A durable top-level abort records that its undo has been
        // applied. Unforced and best-effort: if the record is lost in a
        // crash — or refused by a poisoned log — restart simply replays
        // the (idempotent) undo again. A transaction that never opened
        // its bracket left nothing to record.
        if parent.is_none() && wal_open {
            if let Some(wal) = &self.wal {
                let _ = wal.append(WalPayload::TxnAbort { txn: t.0 });
            }
        }
        {
            let mut active = self.active.lock();
            if let Some(state) = active.remove(&t) {
                if let Some(p) = state.parent {
                    if let Some(ps) = active.get_mut(&p) {
                        ps.children.retain(|c| *c != t);
                    }
                }
            }
        }
        self.locks.release_all(t);
        Ok(())
    }

    /// Number of active transactions (diagnostics).
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Runs `f` with the kernel transactionally quiesced: the checkpoint
    /// gate is held exclusively (new [`TxnManager::begin`]s block) and
    /// the active set is verified empty under it, so `f` observes no
    /// in-flight transactional work. Errors with the active count when
    /// transactions are open.
    pub fn quiesced<R>(&self, f: impl FnOnce() -> PrimaResult<R>) -> PrimaResult<R> {
        let _gate = self.gate.write();
        let active = self.active.lock().len();
        if active > 0 {
            return Err(crate::error::PrimaError::Recovery(format!(
                "checkpoint requires a quiesced kernel; {active} transaction(s) active"
            )));
        }
        f()
    }
}

/// Read-path visibility hook, in one of two modes:
///
/// * **Locking** (explicit transactions, DML qualification): acquires
///   `Shared` locks on behalf of one transaction. The query path (root
///   access, vertical assembly, streaming cursors, DML qualification
///   sub-queries) calls this for every atom that can flow into a result
///   and for every type extension it scans, so retrieval is bracketed
///   by the same Moss lock table as manipulation — strict two-phase:
///   everything acquired here is released at the top-level
///   commit/rollback, never earlier. Conflicts wait (bounded) in the
///   lock table's queue and surface as [`TxnError::LockConflict`] /
///   [`TxnError::LockTimeout`] / [`TxnError::Deadlock`] per its
///   [`LockConfig`]; the holder set is checked against the
///   transaction's ancestor chain, so nested readers tolerate parent
///   writers (Moss's rule).
///
/// * **Snapshot** (auto-commit reads): the lock calls are no-ops —
///   never reaching the lock table at all — and every base read is
///   resolved through the [`VersionStore`] to the version visible at
///   the guard's [`Snapshot`].
#[derive(Clone, Copy)]
pub struct ReadGuard<'a> {
    inner: GuardInner<'a>,
}

#[derive(Clone, Copy)]
enum GuardInner<'a> {
    Locking { mgr: &'a TxnManager, txn: TxnId },
    Snapshot(&'a Snapshot),
}

impl<'a> ReadGuard<'a> {
    /// A lock-free guard reading at `snap`'s registered position.
    pub fn snapshot(snap: &'a Snapshot) -> ReadGuard<'a> {
        ReadGuard { inner: GuardInner::Snapshot(snap) }
    }

    /// `Shared` lock on one atom (no-op on the snapshot path).
    pub fn lock_atom(&self, id: AtomId) -> PrimaResult<()> {
        match self.inner {
            GuardInner::Locking { mgr, txn } => crate::obs::observed(
                crate::obs::SpanKind::LockAcquire,
                || Ok(mgr.lock_atom_shared(txn, id)?),
            ),
            GuardInner::Snapshot(_) => Ok(()),
        }
    }

    /// `Shared` lock on a type extension, before scanning it (no-op on
    /// the snapshot path).
    pub fn lock_extension(&self, ty: AtomTypeId) -> PrimaResult<()> {
        match self.inner {
            GuardInner::Locking { mgr, txn } => crate::obs::observed(
                crate::obs::SpanKind::LockAcquire,
                || Ok(mgr.lock_extension_shared(txn, ty)?),
            ),
            GuardInner::Snapshot(_) => Ok(()),
        }
    }

    /// The snapshot this guard resolves through, if it is in snapshot
    /// mode — the query path uses this to route every base read through
    /// version resolution.
    pub fn as_snapshot(&self) -> Option<&'a Snapshot> {
        match self.inner {
            GuardInner::Locking { .. } => None,
            GuardInner::Snapshot(s) => Some(s),
        }
    }
}

/// Handle to one (sub)transaction. Dropping an unfinished transaction
/// aborts it.
pub struct Transaction {
    id: TxnId,
    mgr: Arc<TxnManager>,
    finished: bool,
}

impl Transaction {
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Starts a subtransaction.
    pub fn begin_child(&self) -> Result<Transaction, TxnError> {
        self.mgr.begin(Some(self.id))
    }

    /// Transactional read (shared lock).
    pub fn read_atom(&self, id: AtomId) -> Result<Atom, TxnError> {
        self.mgr.read_atom(self.id, id)
    }

    /// A [`ReadGuard`] charging read locks to this transaction.
    pub fn read_guard(&self) -> ReadGuard<'_> {
        self.mgr.read_guard(self.id)
    }

    /// Transactional insert (exclusive locks on the new atom and on all
    /// referenced atoms — their back-references change).
    pub fn insert_atom(&self, t: AtomTypeId, values: Vec<Value>) -> Result<AtomId, TxnError> {
        self.mgr.insert_atom(self.id, t, values)
    }

    /// Transactional modify.
    pub fn modify_atom(&self, id: AtomId, updates: &[(usize, Value)]) -> Result<(), TxnError> {
        self.mgr.modify_atom(self.id, id, updates)
    }

    /// Transactional delete.
    pub fn delete_atom(&self, id: AtomId) -> Result<(), TxnError> {
        self.mgr.delete_atom(self.id, id)
    }

    /// Commits; for subtransactions the effects (and locks) pass to the
    /// parent.
    pub fn commit(mut self) -> Result<(), TxnError> {
        self.finished = true;
        self.mgr.commit(self.id)
    }

    /// Aborts, rolling back this transaction's (and its children's)
    /// effects only.
    pub fn abort(mut self) -> Result<(), TxnError> {
        self.finished = true;
        self.mgr.abort(self.id)
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.mgr.abort(self.id);
        }
    }
}

/// Convenience: run `f` in a child transaction, committing on `Ok` and
/// aborting on `Err`.
pub fn with_child<R>(
    parent: &Transaction,
    f: impl FnOnce(&Transaction) -> PrimaResult<R>,
) -> PrimaResult<R> {
    let child = parent.begin_child()?;
    match f(&child) {
        Ok(r) => {
            child.commit()?;
            Ok(r)
        }
        Err(e) => {
            child.abort()?;
            Err(e)
        }
    }
}
