//! Shared helpers for the PRIMA benchmark harness.
//!
//! Every bench regenerates one figure or table of the paper (see the
//! per-experiment index in DESIGN.md). Absolute numbers differ from 1987
//! hardware, but each harness prints the *shape* the paper argues for —
//! who wins, by what factor, where behaviour crosses over — alongside the
//! Criterion timings. EXPERIMENTS.md records the measured shapes.

use prima::Prima;
use prima_workloads::brep::{self, BrepConfig};

/// A BREP database with `n` solids (and optional assembly hierarchy),
/// ready for querying.
pub fn brep_db(n: usize) -> Prima {
    let db = brep::open_db(64 << 20).expect("open");
    brep::populate(&db, &BrepConfig::with_solids(n)).expect("populate");
    db
}

/// Same with an assembly hierarchy.
pub fn brep_db_assembly(n: usize, depth: usize, fanout: usize) -> (Prima, i64) {
    let db = brep::open_db(64 << 20).expect("open");
    let stats =
        brep::populate(&db, &BrepConfig::with_assembly(n, depth, fanout)).expect("populate");
    let root = stats.root_solid_nos.first().copied().unwrap_or(1);
    (db, root)
}

/// Prints one experiment-report line (machine-grepable prefix).
pub fn report(experiment: &str, series: &str, metric: &str, value: impl std::fmt::Display) {
    eprintln!("[{experiment}] {series:<42} {metric:<18} = {value}");
}
