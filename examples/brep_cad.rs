//! CAD-session example: workstation-style object handling on PRIMA.
//!
//! Recreates the usage sketched in Section 4: an application layer checks
//! a molecule *out* into an object buffer, works on it locally, and
//! checks the modifications back in at commit time — with LDL tuning
//! (an atom cluster on the brep "main lanes") making the checkout fast.
//! Checkout and checkin share one session transaction: the checkout's
//! shared locks keep the molecule stable against concurrent writers for
//! the whole engineering session, the checkin upgrades them to exclusive
//! (strict two-phase), and any failure rolls every buffered edit back.
//!
//! ```sh
//! cargo run --example brep_cad
//! ```

use prima::{Molecule, PrimaResult, QueryOptions, Value};
use prima_workloads::brep::{self, BrepConfig};

/// A minimal "object buffer": the checked-out molecule plus pending
/// attribute updates, applied wholesale at checkin.
struct ObjectBuffer {
    molecule: Molecule,
    pending: Vec<(prima::AtomId, Vec<(String, Value)>)>,
}

impl ObjectBuffer {
    /// Checkout through a prepared statement the caller built once: each
    /// checkout only binds the brep number and pulls one molecule from a
    /// streaming cursor — no re-parse, no re-plan.
    fn checkout(stmt: &mut prima::Prepared<'_>, brep_no: i64) -> PrimaResult<ObjectBuffer> {
        stmt.bind(&[Value::Int(brep_no)])?;
        let mut cursor = stmt.cursor(&QueryOptions::default())?;
        let molecule = cursor
            .fetch(1)?
            .into_iter()
            .next()
            .expect("brep exists");
        Ok(ObjectBuffer { molecule, pending: Vec::new() })
    }

    /// Local (buffered) edit — no DBMS call.
    fn edit(&mut self, id: prima::AtomId, attr: &str, value: Value) {
        self.pending.push((id, vec![(attr.to_string(), value)]));
    }

    /// Checkin through the session that did the checkout: the writes
    /// upgrade the checkout's shared locks in place (a foreign
    /// transaction would conflict with them — that is the isolation
    /// working). Any failure rolls back every buffered edit.
    fn checkin(self, session: &prima::Session) -> PrimaResult<usize> {
        let n = self.pending.len();
        let apply = || -> PrimaResult<()> {
            for (id, updates) in &self.pending {
                let pairs: Vec<(&str, Value)> =
                    updates.iter().map(|(name, v)| (name.as_str(), v.clone())).collect();
                session.modify_atom_named(*id, &pairs)?;
            }
            Ok(())
        };
        match apply() {
            Ok(()) => {
                session.commit()?;
                Ok(n)
            }
            Err(e) => {
                session.rollback()?;
                Err(e)
            }
        }
    }
}

fn main() -> PrimaResult<()> {
    let db = brep::open_db(16 << 20)?;
    brep::populate(&db, &BrepConfig::with_solids(20))?;

    // DBA tuning: cluster the brep main lanes so checkout is one chained
    // read per molecule; keep redundancy maintenance deferred.
    db.ldl(
        "CREATE ATOM_CLUSTER cl_brep ON brep (faces, edges, points) PAGESIZE 2K;
         CREATE ACCESS PATH ap_brep_no ON brep (brep_no);
         SET UPDATE POLICY DEFERRED",
    )?;

    // Checkout brep 7 into the workstation's object buffer.
    let session = db.session();
    let r = session.query(
        "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 7",
        &QueryOptions::new().traced(),
    )?;
    let trace = r.trace.expect("traced");
    println!(
        "checkout: {} atoms via {:?}, cluster used: {:?}",
        r.set.molecules[0].atom_count(),
        trace.root_access,
        trace.cluster_used
    );

    // The checkout statement is prepared once per session; every
    // checkout below only binds a brep number.
    let mut checkout_stmt =
        session.prepare("SELECT ALL FROM brep-face-edge-point WHERE brep_no = ?")?;
    let mut buffer = ObjectBuffer::checkout(&mut checkout_stmt, 7)?;

    // Local engineering work: scale every face area (imagine a resize).
    let face_node = 1; // brep-face-edge-point: node 1 = face
    let edits: Vec<prima::AtomId> = buffer
        .molecule
        .atoms_of_node(face_node)
        .iter()
        .map(|a| a.id)
        .collect();
    let schema_face = db.schema().type_by_name("face").unwrap();
    let sq = schema_face.attribute_index("square_dim").unwrap();
    for id in edits {
        // Read through the same session: the atom is already checked out
        // (shared-locked) here, so this is a lock re-acquisition, not a
        // conflict.
        let current = session.read_atom(id)?;
        let old = current.values[sq].as_real().unwrap_or(1.0);
        buffer.edit(id, "square_dim", Value::Real(old * 2.0));
    }
    println!("buffered {} local edits (no DBMS calls)", buffer.pending.len());

    // Checkin at commit time.
    let n = buffer.checkin(&session)?;
    println!("checkin committed {n} modifications atomically");

    // Deferred maintenance is reconciled explicitly (e.g. at end of
    // session).
    let reconciled = db.reconcile()?;
    println!("reconciled {reconciled} deferred structure updates");

    // A failed checkin rolls everything back.
    let mut buffer = ObjectBuffer::checkout(&mut checkout_stmt, 7)?;
    let victim = buffer.molecule.atoms_of_node(face_node)[0].id;
    buffer.edit(victim, "square_dim", Value::Real(-1.0));
    buffer.edit(victim, "nonsense_attribute", Value::Int(0));
    let result = buffer.checkin(&session);
    println!(
        "broken checkin rejected: {}",
        if result.is_err() { "yes (rolled back)" } else { "no" }
    );
    let after = db.read(victim)?;
    println!("face value survived the failed checkin: {}", after.values[sq]);
    Ok(())
}
