//! Atom types: "the atom type is put together by the constituent attribute
//! types" (Section 2.2), plus the `KEYS_ARE` constraint of Fig. 2.3.

use super::types::AttrType;
use crate::value::AtomTypeId;
use std::fmt;

/// One declared attribute of an atom type.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    pub name: String,
    pub ty: AttrType,
}

impl Attribute {
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty }
    }
}

/// An atom type declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomType {
    /// Assigned by the schema on registration.
    pub id: AtomTypeId,
    pub name: String,
    pub attributes: Vec<Attribute>,
    /// `KEYS_ARE (...)`: attribute names whose values must be unique
    /// across the atom set (each listed name is an independent key, as in
    /// Fig. 2.3's single-attribute keys).
    pub keys: Vec<String>,
}

impl AtomType {
    /// Builds an unregistered atom type (id is set by
    /// [`super::Schema::add_atom_type`]).
    pub fn build(name: impl Into<String>, attributes: Vec<Attribute>, keys: Vec<String>) -> Self {
        AtomType { id: 0, name: name.into(), attributes, keys }
    }

    /// Looks up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Positional index of an attribute.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Index of the (unique) IDENTIFIER attribute.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn identifier_index(&self) -> usize {
        self.attributes
            .iter()
            .position(|a| matches!(a.ty, AttrType::Identifier))
            // lint: allow(error-hygiene, registration rejects atom types without an IDENTIFIER attribute)
            .expect("atom types always have an IDENTIFIER (checked on registration)")
    }

    /// Indices of all reference attributes (association endpoints).
    pub fn reference_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.ty.is_reference())
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `name` is declared as a key.
    pub fn is_key(&self, name: &str) -> bool {
        self.keys.iter().any(|k| k == name)
    }
}

impl fmt::Display for AtomType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CREATE ATOM_TYPE {}", self.name)?;
        write!(f, "  (")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ",\n   ")?;
            }
            write!(f, "{} : {}", a.name, a.ty)?;
        }
        write!(f, ")")?;
        if !self.keys.is_empty() {
            write!(f, "\nKEYS_ARE ({})", self.keys.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::types::Cardinality;

    fn solid() -> AtomType {
        AtomType::build(
            "solid",
            vec![
                Attribute::new("solid_id", AttrType::Identifier),
                Attribute::new("solid_no", AttrType::Integer),
                Attribute::new("description", AttrType::CharVar),
                Attribute::new("sub", AttrType::ref_set("solid", "super", Cardinality::any())),
                Attribute::new("super", AttrType::ref_set("solid", "sub", Cardinality::any())),
            ],
            vec!["solid_no".into()],
        )
    }

    #[test]
    fn lookup_by_name_and_index() {
        let t = solid();
        assert_eq!(t.attribute_index("description"), Some(2));
        assert!(t.attribute("nothing").is_none());
        assert_eq!(t.identifier_index(), 0);
        assert_eq!(t.reference_indices(), vec![3, 4]);
        assert!(t.is_key("solid_no"));
        assert!(!t.is_key("description"));
    }

    #[test]
    fn display_resembles_ddl() {
        let text = solid().to_string();
        assert!(text.starts_with("CREATE ATOM_TYPE solid"));
        assert!(text.contains("solid_id : IDENTIFIER"));
        assert!(text.contains("KEYS_ARE (solid_no)"));
        assert!(text.contains("SET_OF (REF_TO (solid.super)) (0,VAR)"));
    }
}
