//! Query-path isolation: shared atom/extension locks on molecule
//! retrieval (strict two-phase, Moss nested-transaction rules).
//!
//! Two-session scenarios over one kernel: a reader must never observe a
//! concurrent session's uncommitted INSERT / MODIFY / DELETE. These
//! tests interleave the conflicting sessions on one thread, so they pin
//! [`LockConfig::no_wait`] — conflicting requests fail immediately with
//! `LockConflict` instead of parking in the (default) bounded-wait
//! queue, and "never observe" concretely means "either sees the
//! committed state or fails fast". Readers open their transaction
//! explicitly with `Session::begin()`: these tests pin the *locking*
//! read path, and a read issued outside a transaction now takes the
//! lock-free snapshot path instead (covered by `tests/snapshot.rs`). Queueing, timeouts and deadlock
//! victims are covered by `tests/contention.rs`. Read-your-own-writes
//! holds within a session, nested subtransactions tolerate their
//! ancestors' locks, and everything a query locked is released at
//! top-level commit/rollback (with the lock table reaping emptied
//! entries — it must not grow with every atom ever locked).

use prima::{LockConfig, Prima, QueryOptions, Value};

const DDL: &str = "
CREATE ATOM_TYPE part
  ( id : IDENTIFIER, part_no : INTEGER, name : CHAR_VAR,
    sub : SET_OF (REF_TO (part.super)),
    super : SET_OF (REF_TO (part.sub)),
    pts : SET_OF (REF_TO (pt.owner)) )
KEYS_ARE (part_no);
CREATE ATOM_TYPE pt
  ( id : IDENTIFIER, n : INTEGER, label : CHAR_VAR,
    owner : SET_OF (REF_TO (part.pts)) );
";

fn db() -> Prima {
    Prima::builder()
        .buffer_bytes(1 << 20)
        .lock_config(LockConfig::no_wait())
        .build_with_ddl(DDL)
        .unwrap()
}

fn names(db: &Prima, mql: &str) -> Vec<String> {
    let s = db.session();
    let set = s.query(mql, &QueryOptions::default()).unwrap().set;
    set.molecules
        .iter()
        .map(|m| match &m.root.atom.values[2] {
            Value::Str(s) => s.clone(),
            other => panic!("name should be Str, got {other:?}"),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Reader vs. uncommitted writer
// ---------------------------------------------------------------------

#[test]
fn reader_conflicts_with_uncommitted_insert() {
    let db = db();
    let writer = db.session();
    writer.execute("INSERT part (part_no: 1, name: 'dirty')").unwrap();

    // A second session's scan conflicts with the uncommitted insert
    // (extension lock), instead of silently including — or excluding —
    // the dirty atom.
    let reader = db.session();
    reader.begin().unwrap();
    let err = reader.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap_err();
    assert!(err.is_lock_conflict(), "expected lock conflict, got: {err}");
    reader.rollback().unwrap();

    // After the writer commits, the same query sees exactly the
    // committed state.
    writer.commit().unwrap();
    assert_eq!(names(&db, "SELECT ALL FROM part"), vec!["dirty".to_string()]);
}

#[test]
fn uncommitted_modify_is_never_observable() {
    let db = db();
    db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("clean".into()))])
        .unwrap();

    let writer = db.session();
    writer.execute("MODIFY part SET name = 'dirty' WHERE part_no = 1").unwrap();

    // One-shot query: conflicts (it would otherwise see 'dirty').
    let reader = db.session();
    reader.begin().unwrap();
    let err = reader
        .query("SELECT ALL FROM part WHERE part_no = 1", &QueryOptions::default())
        .unwrap_err();
    assert!(err.is_lock_conflict(), "{err}");
    reader.rollback().unwrap();

    // Qualification flips are covered too: the reader's predicate
    // *excludes* the dirty value, so without extension locking the scan
    // would silently return the atom's absence — dirty state either way.
    reader.begin().unwrap();
    let err = reader
        .query("SELECT ALL FROM part WHERE name = 'clean'", &QueryOptions::default())
        .unwrap_err();
    assert!(err.is_lock_conflict(), "{err}");
    reader.rollback().unwrap();

    // Rollback releases the writer's locks; only the committed state was
    // ever visible to others.
    writer.rollback().unwrap();
    assert_eq!(names(&db, "SELECT ALL FROM part"), vec!["clean".to_string()]);
}

#[test]
fn uncommitted_delete_is_never_observable() {
    let db = db();
    db.insert("part", &[("part_no", Value::Int(7)), ("name", Value::Str("keeper".into()))])
        .unwrap();
    let writer = db.session();
    writer.execute("DELETE FROM part WHERE part_no = 7").unwrap();

    // Key lookup as well as full scan conflict instead of reporting the
    // atom gone while the delete is uncommitted.
    let reader = db.session();
    reader.begin().unwrap();
    let err = reader
        .query("SELECT ALL FROM part WHERE part_no = 7", &QueryOptions::default())
        .unwrap_err();
    assert!(err.is_lock_conflict(), "{err}");
    reader.rollback().unwrap();

    writer.rollback().unwrap();
    assert_eq!(names(&db, "SELECT ALL FROM part WHERE part_no = 7"), vec!["keeper".to_string()]);
}

#[test]
fn prepared_and_parallel_queries_conflict_like_one_shots() {
    let db = db();
    for i in 0..8 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str("v".into()))])
            .unwrap();
    }
    let writer = db.session();
    writer.execute("MODIFY part SET name = 'dirty' WHERE part_no = 3").unwrap();

    let reader = db.session();
    reader.begin().unwrap();
    let mut stmt = reader.prepare("SELECT ALL FROM part WHERE part_no >= ?").unwrap();
    stmt.bind(&[Value::Int(0)]).unwrap();
    let err = stmt.execute().unwrap_err();
    assert!(err.is_lock_conflict(), "prepared: {err}");
    reader.rollback().unwrap();

    reader.begin().unwrap();
    let err = reader
        .query("SELECT ALL FROM part", &QueryOptions::new().threads(4))
        .unwrap_err();
    assert!(err.is_lock_conflict(), "parallel: {err}");
    reader.rollback().unwrap();
    writer.rollback().unwrap();
}

// ---------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------

#[test]
fn cursor_fetch_never_streams_dirty_atoms() {
    let db = db();
    for i in 0..6 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str("v".into()))])
            .unwrap();
    }

    // Direction 1: the open cursor's extension+atom locks block a writer.
    let reader = db.session();
    reader.begin().unwrap();
    let mut cursor = reader.query_cursor("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(cursor.fetch(2).unwrap().len(), 2);
    let writer = db.session();
    let err = writer.execute("MODIFY part SET name = 'dirty' WHERE part_no = 5").unwrap_err();
    assert!(err.is_lock_conflict(), "writer vs open cursor: {err}");
    writer.rollback().unwrap();
    // The stream keeps delivering committed state.
    let rest = cursor.fetch_all().unwrap();
    assert!(rest.molecules.iter().all(|m| m.root.atom.values[2] == Value::Str("v".into())));
    drop(cursor);
    reader.commit().unwrap();

    // Direction 2: with the reader's locks released mid-stream, a writer
    // gets in — the next fetch then conflicts rather than delivering the
    // writer's uncommitted values.
    reader.begin().unwrap();
    let mut cursor = reader.query_cursor("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(cursor.fetch(1).unwrap().len(), 1);
    reader.commit().unwrap(); // strict 2PL: locks go with the txn
    writer.execute("MODIFY part SET name = 'dirty' WHERE part_no = 4").unwrap();
    let err = cursor.fetch(10).unwrap_err();
    assert!(err.is_lock_conflict(), "fetch after writer moved in: {err}");
    reader.rollback().unwrap();
    writer.rollback().unwrap();
    let rest = cursor.fetch_all().unwrap();
    assert!(
        rest.molecules.iter().all(|m| m.root.atom.values[2] == Value::Str("v".into())),
        "post-rollback stream shows only committed values"
    );
}

// ---------------------------------------------------------------------
// Lock release, read-your-own-writes, nesting
// ---------------------------------------------------------------------

#[test]
fn query_locks_are_released_at_commit_and_rollback_and_table_reaped() {
    let db = db();
    for i in 0..10 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str("v".into()))])
            .unwrap();
    }
    let table = db.txn_manager().lock_table();
    assert_eq!(table.locked_targets(), 0, "auto-commit loads leave no locks behind");

    // A query holds its shared locks (strict 2PL) ...
    let reader = db.session();
    reader.begin().unwrap();
    reader.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert!(table.locked_targets() > 10, "extension + one lock per retrieved atom");
    let writer = db.session();
    let err = writer.execute("INSERT part (part_no: 99, name: 'w')").unwrap_err();
    assert!(err.is_lock_conflict(), "{err}");
    writer.rollback().unwrap();

    // ... until commit releases them and the table reaps emptied entries.
    reader.commit().unwrap();
    assert_eq!(table.locked_targets(), 0, "commit must drain and reap the table");
    writer.execute("INSERT part (part_no: 99, name: 'w')").unwrap();
    writer.commit().unwrap();

    // Rollback releases read locks the same way.
    reader.begin().unwrap();
    reader.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert!(table.locked_targets() > 0);
    reader.rollback().unwrap();
    assert_eq!(table.locked_targets(), 0, "rollback must drain and reap the table");
}

#[test]
fn read_your_own_writes_still_holds() {
    let db = db();
    let session = db.session();
    session.execute("INSERT part (part_no: 5, name: 'mine')").unwrap();
    session.execute("MODIFY part SET name = 'mine-v2' WHERE part_no = 5").unwrap();

    // Same-session query, prepared execution and cursor all see the
    // uncommitted state (the session's own exclusive locks tolerate its
    // shared re-acquisition).
    let got = session
        .query("SELECT ALL FROM part WHERE part_no = 5", &QueryOptions::default())
        .unwrap()
        .set;
    assert_eq!(got.molecules[0].root.atom.values[2], Value::Str("mine-v2".into()));

    let mut stmt = session.prepare("SELECT ALL FROM part WHERE part_no = ?").unwrap();
    stmt.bind(&[Value::Int(5)]).unwrap();
    assert_eq!(stmt.execute().unwrap().molecules().unwrap().set.len(), 1);

    let mut cursor =
        session.query_cursor("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    assert_eq!(cursor.fetch_all().unwrap().len(), 1);
    drop(cursor);
    session.rollback().unwrap();
    assert!(names(&db, "SELECT ALL FROM part").is_empty());
}

#[test]
fn moss_parent_tolerance_on_the_read_path() {
    let db = db();
    let id = db
        .insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("base".into()))])
        .unwrap();

    // Parent transaction writes the atom (exclusive).
    let parent = db.begin().unwrap();
    parent.modify_atom(id, &[(2, Value::Str("parent".into()))]).unwrap();

    // A child's shared read tolerates the parent's exclusive lock —
    // Moss's rule on the read path.
    let child = parent.begin_child().unwrap();
    let atom = child.read_atom(id).unwrap();
    assert_eq!(atom.values[2], Value::Str("parent".into()));
    // The child's read guard (what the query path uses) tolerates it too.
    child.read_guard().lock_atom(id).unwrap();
    child.commit().unwrap();

    // A stranger top-level session conflicts on the same atom.
    let outsider = db.session();
    outsider.begin().unwrap();
    let err = outsider
        .query("SELECT ALL FROM part WHERE part_no = 1", &QueryOptions::default())
        .unwrap_err();
    assert!(err.is_lock_conflict(), "{err}");
    outsider.rollback().unwrap();

    parent.abort().unwrap();
    assert_eq!(names(&db, "SELECT ALL FROM part"), vec!["base".to_string()]);
}

#[test]
fn component_assembly_locks_conflict_with_component_writers() {
    let db = db();
    // A two-level molecule: part root with two pt components — the
    // component type is distinct from the root type, so the root
    // extension lock alone cannot mask the assembly-level check.
    let c1 = db.insert("pt", &[("n", Value::Int(10))]).unwrap();
    let c2 = db.insert("pt", &[("n", Value::Int(11))]).unwrap();
    db.insert(
        "part",
        &[("part_no", Value::Int(1)), ("pts", Value::ref_set(vec![c1, c2]))],
    )
    .unwrap();

    // Writer holds one *component* atom exclusively (transactional
    // modify via the atom-level session API).
    let writer = db.session();
    writer.modify_atom_named(c2, &[("label", Value::Str("dirty".into()))]).unwrap();

    // A reader's root access on `part` succeeds (different extension);
    // vertical assembly must conflict when it reaches the locked pt.
    let reader = db.session();
    reader.begin().unwrap();
    let err = reader
        .query("SELECT ALL FROM part-pt WHERE part_no = 1", &QueryOptions::default())
        .unwrap_err();
    assert!(err.is_lock_conflict(), "assembly vs component writer: {err}");
    reader.rollback().unwrap();
    writer.rollback().unwrap();
    let set = db
        .session()
        .query("SELECT ALL FROM part-pt WHERE part_no = 1", &QueryOptions::default())
        .unwrap()
        .set;
    assert_eq!(set.len(), 1, "committed molecule intact");
    assert_eq!(set.molecules[0].root.children.len(), 2, "both components assembled");
}

#[test]
fn concurrent_readers_share_locks() {
    let db = db();
    for i in 0..5 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str("v".into()))])
            .unwrap();
    }
    // Shared locks coexist: two sessions scan the same extension at once.
    let r1 = db.session();
    let r2 = db.session();
    r1.begin().unwrap();
    r2.begin().unwrap();
    assert_eq!(r1.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap().set.len(), 5);
    assert_eq!(r2.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap().set.len(), 5);
    r1.commit().unwrap();
    r2.commit().unwrap();
    assert_eq!(db.txn_manager().lock_table().locked_targets(), 0);
}

#[test]
fn lock_maintenance_cost_tracks_own_locks_not_table_size() {
    let db = db();
    for i in 0..64 {
        db.insert("part", &[("part_no", Value::Int(i)), ("name", Value::Str("v".into()))])
            .unwrap();
    }
    let table = db.txn_manager().lock_table();

    // A long-lived reader pins the whole extension (65+ locks).
    let big = db.session();
    big.begin().unwrap();
    big.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap();
    let big_held = table.locked_targets();
    assert!(big_held >= 65);

    // A second session reads one atom (key lookup: extension + atom). Its
    // commit must visit only its own two entries — not the whole table.
    let small = db.session();
    small.begin().unwrap();
    small.query("SELECT ALL FROM part WHERE part_no = 3", &QueryOptions::default()).unwrap();
    let before = table.maintenance_visits();
    small.commit().unwrap();
    let visited = table.maintenance_visits() - before;
    assert!(
        visited <= 2,
        "releasing a 2-lock reader visited {visited} entries (table held {big_held})"
    );
    big.commit().unwrap();
    assert_eq!(table.locked_targets(), 0);
}

#[test]
fn cursor_retains_root_when_assembly_conflicts_midway() {
    let db = db();
    // Three part-pt molecules; the writer will lock a pt of the *second*
    // one, so the conflict hits mid-assembly (the part extension lock
    // alone cannot catch it) after the first fetch succeeded.
    let mut pts = Vec::new();
    for i in 0..3 {
        let p = db.insert("pt", &[("n", Value::Int(i))]).unwrap();
        db.insert("part", &[("part_no", Value::Int(i)), ("pts", Value::ref_set(vec![p]))])
            .unwrap();
        pts.push(p);
    }
    let reader = db.session();
    reader.begin().unwrap();
    let mut cursor =
        reader.query_cursor("SELECT ALL FROM part-pt", &QueryOptions::default()).unwrap();
    assert_eq!(cursor.fetch(1).unwrap().len(), 1);
    reader.commit().unwrap(); // release, letting the writer in

    let writer = db.session();
    writer.modify_atom_named(pts[1], &[("label", Value::Str("dirty".into()))]).unwrap();
    let err = cursor.fetch(10).unwrap_err();
    assert!(err.is_lock_conflict(), "{err}");
    reader.rollback().unwrap();
    writer.rollback().unwrap();

    // The conflicted root must still be in the stream: every remaining
    // molecule is delivered after the writer is gone.
    let rest = cursor.fetch_all().unwrap();
    assert_eq!(
        1 + rest.len(),
        3,
        "a mid-assembly conflict must not drop the root it was processing"
    );
}

#[test]
fn read_only_commits_skip_the_wal_force() {
    use prima_storage::{BlockDevice, SimDisk};
    use std::sync::Arc;
    let device = Arc::new(SimDisk::new());
    let db = Prima::builder()
        .buffer_bytes(1 << 20)
        .device(Arc::clone(&device) as Arc<dyn BlockDevice>)
        .durable()
        .build_with_ddl(DDL)
        .unwrap();
    db.insert("part", &[("part_no", Value::Int(1)), ("name", Value::Str("v".into()))])
        .unwrap();

    // Reader sessions: query + commit must cost no log traffic at all —
    // no bracket records, no commit record, no force.
    let before = device.stats().snapshot();
    for _ in 0..10 {
        let s = db.session();
        assert_eq!(s.query("SELECT ALL FROM part", &QueryOptions::default()).unwrap().set.len(), 1);
        s.commit().unwrap();
        let _ = db.read(db.access().all_ids(db.schema().type_id("part").unwrap()).unwrap()[0]);
    }
    let d = device.stats().snapshot().since(&before);
    assert_eq!(d.wal_forces, 0, "read-only commits must not force the WAL");
    assert_eq!(d.wal_bytes, 0, "read-only transactions must leave no log records");

    // A manipulating commit still forces exactly as before.
    let s = db.session();
    s.execute("INSERT part (part_no: 2, name: 'w')").unwrap();
    s.commit().unwrap();
    let d = device.stats().snapshot().since(&before);
    assert_eq!(d.wal_forces, 1, "a writing commit is the group-commit force point");
}
