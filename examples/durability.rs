//! Durability: the quickstart database, but one that survives restart.
//!
//! The paper presents PRIMA on the INCAS *file manager* — real files —
//! and argues for keeping engineering data in a DBMS rather than flat
//! files precisely because a database has a life beyond one process.
//! This example is that argument end to end:
//!
//! 1. build a file-backed kernel (`PrimaBuilder::path`) with the Fig. 2.3
//!    schema, populate it through sessions and commit;
//! 2. "crash" (drop the instance without a checkpoint — dirty pages and
//!    all);
//! 3. `Prima::open` the directory: restart recovery redoes the committed
//!    work from the write-ahead log and rolls back the transaction that
//!    was still open, then the Table 2.1a query runs against the
//!    recovered molecules.
//!
//! ```sh
//! cargo run --example durability
//! ```

use prima::{Prima, PrimaResult, QueryOptions, Value};
use prima_workloads::brep::{self, BrepConfig};

fn main() -> PrimaResult<()> {
    let dir = std::env::temp_dir().join(format!("prima-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. A *durable* kernel: FileDisk at `dir`, WAL on, initial checkpoint.
    let db = Prima::builder()
        .buffer_bytes(8 << 20)
        .path(&dir)?
        .build_with_ddl(brep::schema_ddl())?;
    println!("created file-backed database at {}", dir.display());

    let stats = brep::populate(&db, &BrepConfig::with_assembly(4, 2, 2))?;
    // The bulk load runs through the direct atom interface (no
    // transaction), so it becomes durable at the next checkpoint — the
    // classic load-then-checkpoint pattern.
    db.checkpoint()?;
    println!(
        "populated + checkpointed: {} solids, {} faces, {} edges, {} points",
        stats.solid_ids.len(),
        stats.faces,
        stats.edges,
        stats.points
    );

    // An open transaction that will NOT survive: the crash below loses it.
    let session = db.session();
    session.execute("INSERT solid (solid_no: 4711, description: 'uncommitted scratch')")?;
    println!("left one transaction open (solid 4711, never committed)");

    // 2. Crash: no checkpoint, no rollback, no flush.
    std::mem::forget(session);
    std::mem::forget(db);
    println!("-- crash --");

    // 3. Restart recovery.
    let db = Prima::open(&dir)?;
    println!("reopened via Prima::open: recovery replayed the log tail");

    let gone = db
        .session()
        .query("SELECT ALL FROM solid WHERE solid_no = 4711", &QueryOptions::default())?;
    assert!(gone.set.is_empty(), "the open transaction must be rolled back");
    println!("uncommitted solid 4711: rolled back ✓");

    // Table 2.1a against the recovered database, prepared + bound.
    let session = db.session();
    let mut by_brep = session.prepare(
        "SELECT ALL FROM brep-face-edge-point WHERE brep_no = ? (* qualification *)",
    )?;
    for n in 1..=2i64 {
        by_brep.bind(&[Value::Int(n)])?;
        let r = by_brep.query(&QueryOptions::new().traced())?;
        println!(
            "Table 2.1a (brep {n}) after restart: {} molecule(s), {} faces via {:?}",
            r.set.len(),
            r.set.atoms_of("face").len(),
            r.trace.expect("traced").root_access
        );
        assert_eq!(r.set.len(), 1, "committed breps must be readable after recovery");
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("done — database recovered exactly to its committed state");
    Ok(())
}
