//! Umbrella crate for the PRIMA reproduction workspace.
//!
//! The kernel lives in the `crates/` members (`prima-storage` →
//! `prima-access` → `prima`); this package only anchors the repository's
//! integration tests (`tests/`) and application-layer examples
//! (`examples/`) and re-exports the facade for convenience.

pub use prima::{Prima, PrimaBuilder};
