//! Recursive-descent parser for MQL.
//!
//! The grammar is reconstructed from the paper's examples; every query of
//! Table 2.1 parses verbatim (including the `(* comments *)`), as the
//! tests at the bottom of this file demonstrate.

use super::ast::*;
use super::lexer::{lex, ParseError, Token, TokenKind};
use crate::schema::{MoleculeGraph, MoleculeNode};
use crate::value::Value;

/// Names of a statement's parameter slots, in slot order: `None` for a
/// positional `?`, `Some(name)` for `:name` (each distinct name owns one
/// slot no matter how often it occurs).
pub type ParamSlots = Vec<Option<String>>;

/// Parses one MQL statement.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    Ok(parse_statement_params(src)?.0)
}

/// Parses one MQL statement together with its parameter-slot table
/// (prepared statements; `?` allocates slots in order of appearance,
/// `:name` unifies repeated occurrences of the same name).
pub fn parse_statement_params(src: &str) -> Result<(Statement, ParamSlots), ParseError> {
    let run = || -> Result<(Statement, ParamSlots), ParseError> {
        let tokens = lex(src)?;
        let mut p = Parser { tokens, pos: 0, params: Vec::new() };
        let stmt = p.statement()?;
        p.expect_eof()?;
        Ok((stmt, p.params))
    };
    run().map_err(|e| e.locate(src))
}

/// Parses a SELECT query.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    match parse_statement(src)? {
        Statement::Select(q) => Ok(q),
        other => Err(ParseError::new(
            format!("expected a SELECT query, found {other:?}"),
            0,
        )
        .locate(src)),
    }
}

/// Parses a FROM-clause structure expression on its own (used by the DDL
/// for `DEFINE MOLECULE TYPE … FROM …`).
pub fn parse_structure(src: &str) -> Result<MoleculeGraph, ParseError> {
    let run = || -> Result<MoleculeGraph, ParseError> {
        let tokens = lex(src)?;
        let mut p = Parser { tokens, pos: 0, params: Vec::new() };
        let g = p.from_structure()?;
        p.expect_eof()?;
        Ok(g)
    };
    run().map_err(|e| e.locate(src))
}

pub(crate) struct Parser {
    pub tokens: Vec<Token>,
    pub pos: usize,
    /// Parameter slot table: `None` = positional `?`, `Some(name)` =
    /// named `:name` (repeated names share their slot).
    pub params: ParamSlots,
}

impl Parser {
    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    pub(crate) fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    pub(crate) fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected '{kw}', found '{}'", self.peek()), self.offset()))
        }
    }

    pub(crate) fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, k: TokenKind) -> Result<(), ParseError> {
        if self.eat(&k) {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected '{k}', found '{}'", self.peek()), self.offset()))
        }
    }

    pub(crate) fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => {
                Err(ParseError::new(format!("expected identifier, found '{other}'"), self.offset()))
            }
        }
    }

    pub(crate) fn expect_eof(&mut self) -> Result<(), ParseError> {
        // Trailing semicolon is permitted.
        self.eat(&TokenKind::Semicolon);
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(ParseError::new(format!("unexpected trailing '{}'", self.peek()), self.offset()))
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek().is_kw("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.peek().is_kw("insert") {
            Ok(Statement::Insert(self.insert()?))
        } else if self.peek().is_kw("delete") {
            Ok(Statement::Delete(self.delete()?))
        } else if self.peek().is_kw("modify") {
            Ok(Statement::Modify(self.modify()?))
        } else {
            Err(ParseError::new(
                format!("expected SELECT/INSERT/DELETE/MODIFY, found '{}'", self.peek()),
                self.offset(),
            ))
        }
    }

    // ---------------------------------------------------------------
    // SELECT
    // ---------------------------------------------------------------

    fn select(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("select")?;
        let select = if self.peek().is_kw("all") && self.peek_at(1).is_kw("from") {
            self.bump();
            SelectList::All
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat(&TokenKind::Comma) {
                items.push(self.select_item()?);
            }
            SelectList::Items(items)
        };
        self.expect_kw("from")?;
        let from = FromClause::Structure(self.from_structure()?);
        let predicate =
            if self.eat_kw("where") { Some(self.predicate()?) } else { None };
        Ok(Query { select, from, predicate })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat(&TokenKind::LParen) {
            let mut items = vec![self.select_item()?];
            while self.eat(&TokenKind::Comma) {
                items.push(self.select_item()?);
            }
            self.expect(TokenKind::RParen)?;
            return Ok(SelectItem::Group(items));
        }
        let name = self.ident()?;
        if self.eat(&TokenKind::Assign) {
            // qualified projection: name := SELECT …
            let q = self.select()?;
            return Ok(SelectItem::Qualified { component: name, query: Box::new(q) });
        }
        if self.eat(&TokenKind::Dot) {
            let attr = self.ident()?;
            return Ok(SelectItem::Attr(CompRef {
                component: Some(name),
                level: None,
                attr,
            }));
        }
        // Bare name: component or root attribute — validation decides.
        Ok(SelectItem::Component(name))
    }

    // ---------------------------------------------------------------
    // FROM structure expressions
    // ---------------------------------------------------------------

    /// Parses `a[.attr]-b (c, d)-…` chains with branches and the
    /// `(RECURSIVE)` marker.
    #[allow(clippy::wrong_self_convention)] // parses a FROM clause, not a conversion
    pub(crate) fn from_structure(&mut self) -> Result<MoleculeGraph, ParseError> {
        let root = self.structure_chain()?;
        Ok(MoleculeGraph::new(root))
    }

    fn structure_chain(&mut self) -> Result<MoleculeNode, ParseError> {
        let name = self.ident()?;
        let mut node = MoleculeNode::leaf(name);
        // Suffix: recursion marker or branch.
        if self.peek() == &TokenKind::LParen {
            if self.peek_at(1).is_kw("recursive") {
                self.bump(); // (
                self.bump(); // recursive
                self.expect(TokenKind::RParen)?;
                node.recursive = true;
            } else {
                self.bump(); // (
                let mut children = vec![self.structure_chain()?];
                while self.eat(&TokenKind::Comma) {
                    children.push(self.structure_chain()?);
                }
                self.expect(TokenKind::RParen)?;
                node.children = children;
                return Ok(node);
            }
        }
        // Via-attribute for the next component: `solid.sub - solid`.
        let mut via: Option<String> = None;
        if self.peek() == &TokenKind::Dot {
            self.bump();
            via = Some(self.ident()?);
        }
        if self.eat(&TokenKind::Minus) {
            let mut child = self.structure_chain()?;
            child.via_attr = via;
            node.children.push(child);
        } else if via.is_some() {
            return Err(ParseError::new(
                "dangling '.attr' without '-' continuation in FROM".to_string(),
                self.offset(),
            ));
        }
        Ok(node)
    }

    // ---------------------------------------------------------------
    // Predicates
    // ---------------------------------------------------------------

    pub(crate) fn predicate(&mut self) -> Result<Predicate, ParseError> {
        self.or_expr()
    }

    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn or_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_kw("or") {
            terms.push(self.and_expr()?);
        }
        // lint: allow(error-hygiene, pop after len == 1 check in the same expression)
        Ok(if terms.len() == 1 { terms.pop().unwrap() } else { Predicate::Or(terms) })
    }

    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn and_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut terms = vec![self.not_expr()?];
        while self.eat_kw("and") {
            terms.push(self.not_expr()?);
        }
        // lint: allow(error-hygiene, pop after len == 1 check in the same expression)
        Ok(if terms.len() == 1 { terms.pop().unwrap() } else { Predicate::And(terms) })
    }

    fn not_expr(&mut self) -> Result<Predicate, ParseError> {
        if self.eat_kw("not") {
            return Ok(Predicate::Not(Box::new(self.not_expr()?)));
        }
        // Quantifiers.
        if self.peek().is_kw("exists_at_least") {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let n = match self.bump() {
                TokenKind::Int(i) if i >= 0 => i as u32,
                other => {
                    return Err(ParseError::new(
                        format!("expected count, found '{other}'"),
                        self.offset(),
                    ))
                }
            };
            self.expect(TokenKind::RParen)?;
            let component = self.ident()?;
            self.expect(TokenKind::Colon)?;
            let inner = self.not_expr()?;
            return Ok(Predicate::ExistsAtLeast { n, component, inner: Box::new(inner) });
        }
        if self.peek().is_kw("for_all") || self.peek().is_kw("all") {
            // `ALL component: pred` — the ALL-quantifier.
            if self.peek_at(1).ident().is_some() && self.peek_at(2) == &TokenKind::Colon {
                self.bump();
                let component = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let inner = self.not_expr()?;
                return Ok(Predicate::ForAll { component, inner: Box::new(inner) });
            }
        }
        // Parenthesised predicate (operands never start with '(').
        if self.peek() == &TokenKind::LParen {
            self.bump();
            let p = self.predicate()?;
            self.expect(TokenKind::RParen)?;
            return Ok(p);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate, ParseError> {
        let left = self.operand()?;
        let op = match self.bump() {
            TokenKind::Eq => CompareOp::Eq,
            TokenKind::Ne => CompareOp::Ne,
            TokenKind::Lt => CompareOp::Lt,
            TokenKind::Le => CompareOp::Le,
            TokenKind::Gt => CompareOp::Gt,
            TokenKind::Ge => CompareOp::Ge,
            other => {
                return Err(ParseError::new(
                    format!("expected comparison operator, found '{other}'"),
                    self.offset(),
                ))
            }
        };
        // `x = EMPTY` / `x <> EMPTY`
        if self.peek().is_kw("empty") {
            self.bump();
            let r = match left {
                Operand::Ref(r) => r,
                Operand::Literal(_) | Operand::Param(_) => {
                    return Err(ParseError::new(
                        "EMPTY test requires an attribute reference".to_string(),
                        self.offset(),
                    ))
                }
            };
            return Ok(match op {
                CompareOp::Eq => Predicate::IsEmpty(r),
                CompareOp::Ne => Predicate::NotEmpty(r),
                _ => {
                    return Err(ParseError::new(
                        "EMPTY supports only = and <>".to_string(),
                        self.offset(),
                    ))
                }
            });
        }
        let right = self.operand()?;
        Ok(Predicate::Compare { left, op, right })
    }

    /// Allocates (or reuses, for repeated `:name`s) a parameter slot.
    fn param_slot(&mut self, name: Option<String>) -> Result<u16, ParseError> {
        if let Some(n) = &name {
            if let Some(i) =
                self.params.iter().position(|p| p.as_deref() == Some(n.as_str()))
            {
                return Ok(i as u16);
            }
        }
        let i = self.params.len();
        if i > u16::MAX as usize {
            return Err(ParseError::new("too many parameters", self.offset()));
        }
        self.params.push(name);
        Ok(i as u16)
    }

    /// Parses a parameter placeholder if one starts here: `?` or `:name`
    /// (the colon form is only meaningful in value positions, where a bare
    /// colon is otherwise invalid).
    fn try_param(&mut self) -> Result<Option<u16>, ParseError> {
        match self.peek() {
            TokenKind::Question => {
                self.bump();
                Ok(Some(self.param_slot(None)?))
            }
            TokenKind::Colon => {
                self.bump();
                let name = self.ident()?;
                Ok(Some(self.param_slot(Some(name))?))
            }
            _ => Ok(None),
        }
    }

    /// A literal or a parameter placeholder (DML value positions).
    fn value_expr(&mut self) -> Result<ValueExpr, ParseError> {
        if let Some(slot) = self.try_param()? {
            return Ok(ValueExpr::Param(slot));
        }
        Ok(ValueExpr::Lit(self.literal()?))
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        if let Some(slot) = self.try_param()? {
            return Ok(Operand::Param(slot));
        }
        match self.peek().clone() {
            TokenKind::Int(_) | TokenKind::Real(_) | TokenKind::Str(_) | TokenKind::Minus => {
                Ok(Operand::Literal(self.literal()?))
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("true") || name.eq_ignore_ascii_case("false") {
                    return Ok(Operand::Literal(self.literal()?));
                }
                self.bump();
                // `name (level).attr` | `name.attr` | `name`
                let mut level = None;
                if self.peek() == &TokenKind::LParen {
                    if let TokenKind::Int(l) = self.peek_at(1).clone() {
                        if self.peek_at(2) == &TokenKind::RParen {
                            self.bump();
                            self.bump();
                            self.bump();
                            level = Some(l as u32);
                        }
                    }
                }
                if self.eat(&TokenKind::Dot) {
                    let attr = self.ident()?;
                    Ok(Operand::Ref(CompRef { component: Some(name), level, attr }))
                } else if level.is_some() {
                    Err(ParseError::new(
                        "component level reference needs '.attr'".to_string(),
                        self.offset(),
                    ))
                } else {
                    Ok(Operand::Ref(CompRef { component: None, level: None, attr: name }))
                }
            }
            other => Err(ParseError::new(
                format!("expected operand, found '{other}'"),
                self.offset(),
            )),
        }
    }

    pub(crate) fn literal(&mut self) -> Result<Value, ParseError> {
        let neg = self.eat(&TokenKind::Minus);
        match self.bump() {
            TokenKind::Int(i) => Ok(Value::Int(if neg { -i } else { i })),
            TokenKind::Real(r) => Ok(Value::Real(if neg { -r } else { r })),
            TokenKind::Str(s) if !neg => Ok(Value::Str(s)),
            TokenKind::Ident(s) if !neg && s.eq_ignore_ascii_case("true") => {
                Ok(Value::Bool(true))
            }
            TokenKind::Ident(s) if !neg && s.eq_ignore_ascii_case("false") => {
                Ok(Value::Bool(false))
            }
            other => Err(ParseError::new(
                format!("expected literal, found '{other}'"),
                self.offset(),
            )),
        }
    }

    // ---------------------------------------------------------------
    // DML
    // ---------------------------------------------------------------

    fn insert(&mut self) -> Result<Insert, ParseError> {
        self.expect_kw("insert")?;
        let atom_type = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut assignments = Vec::new();
        loop {
            let attr = self.ident()?;
            self.expect(TokenKind::Colon)?;
            let v = self.value_expr()?;
            assignments.push((attr, v));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Insert { atom_type, assignments })
    }

    fn delete(&mut self) -> Result<Delete, ParseError> {
        self.expect_kw("delete")?;
        let only_components = if self.eat_kw("only") {
            self.expect(TokenKind::LParen)?;
            let mut names = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                names.push(self.ident()?);
            }
            self.expect(TokenKind::RParen)?;
            Some(names)
        } else {
            None
        };
        self.expect_kw("from")?;
        let from = FromClause::Structure(self.from_structure()?);
        let predicate = if self.eat_kw("where") { Some(self.predicate()?) } else { None };
        Ok(Delete { from, predicate, only_components })
    }

    fn modify(&mut self) -> Result<Modify, ParseError> {
        self.expect_kw("modify")?;
        let from = FromClause::Structure(self.from_structure()?);
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let first = self.ident()?;
            let target = if self.eat(&TokenKind::Dot) {
                let attr = self.ident()?;
                CompRef { component: Some(first), level: None, attr }
            } else {
                CompRef { component: None, level: None, attr: first }
            };
            self.expect(TokenKind::Eq)?;
            let expr = if self.eat_kw("connect") {
                self.expect(TokenKind::LParen)?;
                let q = self.select()?;
                self.expect(TokenKind::RParen)?;
                SetExpr::Connect(Box::new(q))
            } else if self.eat_kw("disconnect") {
                self.expect(TokenKind::LParen)?;
                let q = self.select()?;
                self.expect(TokenKind::RParen)?;
                SetExpr::Disconnect(Box::new(q))
            } else {
                SetExpr::Value(self.value_expr()?)
            };
            assignments.push((target, expr));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") { Some(self.predicate()?) } else { None };
        Ok(Modify { from, predicate, assignments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -----------------------------------------------------------------
    // The four queries of Table 2.1, verbatim from the paper.
    // -----------------------------------------------------------------

    #[test]
    fn table_2_1a_vertical_network_access() {
        let q = parse_query(
            "SELECT ALL\nFROM brep-face-edge-point\nWHERE brep_no = 1713 (* qualification *)",
        )
        .unwrap();
        assert_eq!(q.select, SelectList::All);
        assert_eq!(
            q.from.graph().component_names(),
            vec!["brep", "face", "edge", "point"]
        );
        match q.predicate.unwrap() {
            Predicate::Compare { left: Operand::Ref(r), op: CompareOp::Eq, right } => {
                assert_eq!(r.attr, "brep_no");
                assert_eq!(right, Operand::Literal(Value::Int(1713)));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn table_2_1b_recursive_access() {
        let q = parse_query(
            "SELECT ALL (* pre-defined molecule type *)\nFROM piece_list\nWHERE piece_list (0).solid_no = 4711 (* seed qualification *)",
        )
        .unwrap();
        assert_eq!(q.from.graph().component_names(), vec!["piece_list"]);
        match q.predicate.unwrap() {
            Predicate::Compare { left: Operand::Ref(r), .. } => {
                assert_eq!(r.component.as_deref(), Some("piece_list"));
                assert_eq!(r.level, Some(0));
                assert_eq!(r.attr, "solid_no");
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn table_2_1c_horizontal_access() {
        let q = parse_query(
            "SELECT solid_no, description (* unqualified projection *)\nFROM solid\nWHERE sub = EMPTY",
        )
        .unwrap();
        match &q.select {
            SelectList::Items(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], SelectItem::Component("solid_no".into()));
            }
            other => panic!("unexpected select {other:?}"),
        }
        assert!(matches!(q.predicate.unwrap(), Predicate::IsEmpty(r) if r.attr == "sub"));
    }

    #[test]
    fn table_2_1d_miscellaneous_query() {
        let src = "SELECT edge, (point, (* unqualified projection p1 *)\n\
                    face := SELECT face_id, square_dim\n\
                    FROM face (* qualified projection q3, p2 *)\n\
                    WHERE square_dim > 1.9E4)\n\
                    FROM brep-edge (face, point)\n\
                    WHERE brep_no = 1713 (* qualification q1 *)\n\
                    AND\n\
                    EXISTS_AT_LEAST (2) edge: edge.length > 1.0E2\n\
                    (* quantified restriction q2 *)";
        let q = parse_query(src).unwrap();
        // SELECT list: edge, (point, face := …)
        let SelectList::Items(items) = &q.select else { panic!("items expected") };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], SelectItem::Component("edge".into()));
        let SelectItem::Group(inner) = &items[1] else { panic!("group expected") };
        assert_eq!(inner[0], SelectItem::Component("point".into()));
        let SelectItem::Qualified { component, query } = &inner[1] else {
            panic!("qualified projection expected")
        };
        assert_eq!(component, "face");
        assert!(matches!(
            query.predicate.as_ref().unwrap(),
            Predicate::Compare { op: CompareOp::Gt, .. }
        ));
        // FROM: brep-edge (face, point)
        let g = q.from.graph();
        assert_eq!(g.root.component, "brep");
        assert_eq!(g.root.children[0].component, "edge");
        assert_eq!(g.root.children[0].children.len(), 2);
        // WHERE: conjunction with a quantifier.
        let Predicate::And(terms) = q.predicate.unwrap() else { panic!("AND expected") };
        assert!(matches!(
            &terms[1],
            Predicate::ExistsAtLeast { n: 2, component, .. } if component == "edge"
        ));
    }

    // -----------------------------------------------------------------
    // Structure expressions
    // -----------------------------------------------------------------

    #[test]
    fn recursive_structure_with_via() {
        let g = parse_structure("solid.sub - solid (recursive)").unwrap();
        assert_eq!(g.root.component, "solid");
        let child = &g.root.children[0];
        assert_eq!(child.component, "solid");
        assert_eq!(child.via_attr.as_deref(), Some("sub"));
        assert!(child.recursive);
        assert!(g.is_recursive());
    }

    #[test]
    fn dangling_via_rejected() {
        assert!(parse_structure("solid.sub").is_err());
    }

    #[test]
    fn nested_branching() {
        let g = parse_structure("a-b (c-d, e)").unwrap();
        let b = &g.root.children[0];
        assert_eq!(b.component, "b");
        assert_eq!(b.children.len(), 2);
        assert_eq!(b.children[0].component, "c");
        assert_eq!(b.children[0].children[0].component, "d");
        assert_eq!(b.children[1].component, "e");
    }

    // -----------------------------------------------------------------
    // Predicates
    // -----------------------------------------------------------------

    #[test]
    fn boolean_precedence_and_not() {
        let q =
            parse_query("SELECT ALL FROM s WHERE a = 1 OR b = 2 AND NOT c = 3").unwrap();
        let Predicate::Or(terms) = q.predicate.unwrap() else { panic!("OR at top") };
        assert_eq!(terms.len(), 2);
        assert!(matches!(&terms[1], Predicate::And(inner) if inner.len() == 2));
    }

    #[test]
    fn parenthesised_predicates() {
        let q = parse_query("SELECT ALL FROM s WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        let Predicate::And(terms) = q.predicate.unwrap() else { panic!("AND at top") };
        assert!(matches!(&terms[0], Predicate::Or(_)));
    }

    #[test]
    fn for_all_quantifier() {
        let q = parse_query("SELECT ALL FROM s-e WHERE ALL e: e.length > 0.5").unwrap();
        assert!(matches!(q.predicate.unwrap(), Predicate::ForAll { component, .. } if component == "e"));
    }

    #[test]
    fn negative_literals_and_strings() {
        let q = parse_query("SELECT ALL FROM s WHERE x = -5 AND name = 'cube'").unwrap();
        let Predicate::And(terms) = q.predicate.unwrap() else { panic!() };
        assert!(matches!(
            &terms[0],
            Predicate::Compare { right: Operand::Literal(Value::Int(-5)), .. }
        ));
        assert!(matches!(
            &terms[1],
            Predicate::Compare { right: Operand::Literal(Value::Str(s)), .. } if s == "cube"
        ));
    }

    // -----------------------------------------------------------------
    // DML
    // -----------------------------------------------------------------

    #[test]
    fn insert_statement() {
        let s = parse_statement("INSERT solid (solid_no: 4711, description: 'cube')").unwrap();
        let Statement::Insert(i) = s else { panic!() };
        assert_eq!(i.atom_type, "solid");
        assert_eq!(i.assignments[0], ("solid_no".into(), ValueExpr::Lit(Value::Int(4711))));
    }

    // -----------------------------------------------------------------
    // Parameter placeholders (prepared statements)
    // -----------------------------------------------------------------

    #[test]
    fn positional_parameters_allocate_slots_in_order() {
        let (s, slots) = parse_statement_params(
            "SELECT ALL FROM brep-face WHERE brep_no = ? AND face.square_dim > ?",
        )
        .unwrap();
        assert_eq!(slots, vec![None, None]);
        let Statement::Select(q) = s else { panic!() };
        let Predicate::And(terms) = q.predicate.unwrap() else { panic!() };
        assert!(matches!(
            &terms[0],
            Predicate::Compare { right: Operand::Param(0), .. }
        ));
        assert!(matches!(
            &terms[1],
            Predicate::Compare { right: Operand::Param(1), .. }
        ));
    }

    #[test]
    fn named_parameters_share_slots() {
        let (_, slots) = parse_statement_params(
            "SELECT ALL FROM s WHERE a = :v OR b = :v AND c = :w",
        )
        .unwrap();
        assert_eq!(slots, vec![Some("v".into()), Some("w".into())]);
    }

    #[test]
    fn parameters_in_dml_value_positions() {
        let (s, slots) =
            parse_statement_params("INSERT solid (solid_no: ?, description: :d)").unwrap();
        assert_eq!(slots.len(), 2);
        let Statement::Insert(i) = s else { panic!() };
        assert_eq!(i.assignments[0].1, ValueExpr::Param(0));
        assert_eq!(i.assignments[1].1, ValueExpr::Param(1));
        let (s, slots) =
            parse_statement_params("MODIFY solid SET description = ? WHERE solid_no = ?").unwrap();
        assert_eq!(slots.len(), 2);
        let Statement::Modify(m) = s else { panic!() };
        assert_eq!(m.assignments[0].1, SetExpr::Value(ValueExpr::Param(0)));
    }

    #[test]
    fn bind_params_substitutes_everywhere() {
        let (s, _) = parse_statement_params(
            "MODIFY solid SET description = :d WHERE solid_no = :n",
        )
        .unwrap();
        let bound = s.bind_params(&[Value::Str("renamed".into()), Value::Int(7)]);
        let Statement::Modify(m) = bound else { panic!() };
        assert_eq!(
            m.assignments[0].1,
            SetExpr::Value(ValueExpr::Lit(Value::Str("renamed".into())))
        );
        assert!(matches!(
            m.predicate.unwrap(),
            Predicate::Compare { right: Operand::Literal(Value::Int(7)), .. }
        ));
    }

    #[test]
    fn parser_errors_carry_line_and_column() {
        let err = parse_query("SELECT ALL\nFROM s\nWHERE = 1").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn delete_statement_with_only() {
        let s =
            parse_statement("DELETE ONLY (edge, point) FROM brep-face-edge-point WHERE brep_no = 1")
                .unwrap();
        let Statement::Delete(d) = s else { panic!() };
        assert_eq!(d.only_components.unwrap(), vec!["edge".to_string(), "point".to_string()]);
        assert!(d.predicate.is_some());
    }

    #[test]
    fn modify_statement_with_connect() {
        let s = parse_statement(
            "MODIFY solid SET description = 'renamed', sub = CONNECT (SELECT ALL FROM solid WHERE solid_no = 2) WHERE solid_no = 1",
        )
        .unwrap();
        let Statement::Modify(m) = s else { panic!() };
        assert_eq!(m.assignments.len(), 2);
        assert!(matches!(m.assignments[1].1, SetExpr::Connect(_)));
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_query("SELECT ALL FROM s;").is_ok());
        assert!(parse_query("SELECT ALL FROM s extra").is_err());
    }
}
