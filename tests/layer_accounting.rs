//! E-F3.1: the layer model of Fig. 3.1 — one molecule query maps through
//! molecule sets → atoms → physical records → pages → blocks, and every
//! layer's accounting is observable and consistent.

use prima_workloads::brep::{self, BrepConfig};
use prima_workloads::exec;
use std::sync::atomic::Ordering;

#[test]
fn one_query_touches_every_layer() {
    let db = brep::open_db(1 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(10)).unwrap();
    db.storage().drop_cache().unwrap();
    db.storage().io_stats().reset();
    db.storage().buffer_stats().reset();
    db.access().stats().reset();

    // Data system: molecule-set in, atoms out.
    let (set, trace) =
        exec::query_traced(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 5").unwrap();

    // Layer 1 — data system: one molecule of 79 atoms.
    assert_eq!(set.len(), 1);
    assert_eq!(trace.molecules, 1);
    let atoms_in_molecule = set.molecules[0].atom_count();
    assert_eq!(atoms_in_molecule, 79);
    assert!(trace.atoms_fetched >= atoms_in_molecule - 1, "assembly fetched the components");

    // Layer 2 — access system: primary-record reads happened.
    let primary_reads = db.access().stats().primary_reads.load(Ordering::Relaxed);
    assert!(primary_reads as usize >= atoms_in_molecule - 1, "got {primary_reads}");

    // Layer 3 — storage system: buffer served page fixes, some missed to
    // the device.
    let (hits, misses, _, _) = db.storage().buffer_stats().snapshot();
    assert!(hits + misses > 0, "pages were fixed");
    assert!(misses > 0, "cold start must read the device");

    // Layer 4 — device: block reads of 4K data pages.
    let io = db.storage().io_stats().snapshot();
    assert!(io.block_reads > 0);
    assert_eq!(io.block_reads, misses, "every miss is exactly one block read");
    assert!(io.bytes_read >= io.block_reads * 512);
}

#[test]
fn warm_repeat_stays_in_upper_layers() {
    let db = brep::open_db(8 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(5)).unwrap();
    let q = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2";
    let _ = exec::query(&db, q).unwrap();
    db.storage().io_stats().reset();
    let _ = exec::query(&db, q).unwrap();
    let io = db.storage().io_stats().snapshot();
    assert_eq!(io.block_reads, 0, "warm repeat must not touch the device");
}

#[test]
fn per_layer_counters_scale_with_molecule_count() {
    let db = brep::open_db(16 << 20).unwrap();
    brep::populate(&db, &BrepConfig::with_solids(12)).unwrap();
    db.access().stats().reset();
    let (_, trace1) =
        exec::query_traced(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1").unwrap();
    let one = trace1.atoms_fetched;
    let (_, trace_all) =
        exec::query_traced(&db, "SELECT ALL FROM brep-face-edge-point WHERE brep_no > 0").unwrap();
    assert_eq!(trace_all.molecules, 12);
    assert!(
        trace_all.atoms_fetched >= 12 * one,
        "12 molecules fetch at least 12x the atoms of one ({} vs {one})",
        trace_all.atoms_fetched
    );
}
