//! Unified observability: statement profiler, metrics registry,
//! slow-statement log.
//!
//! PRIMA's layered architecture (Fig. 3.1) makes performance opaque by
//! construction: one MQL statement crosses parse/plan, lock or snapshot
//! resolution, vertical assembly, buffer fixes, device I/O and WAL
//! forces — and each layer historically reported through its own
//! disconnected counter struct. This module is the seam that joins
//! them:
//!
//! * **Statement profiler** ([`profile`]): hierarchical timed spans
//!   threaded through the statement path via a thread-local recorder
//!   plus the storage crate's probe hook, producing a
//!   [`StatementProfile`] (span tree + per-layer counter deltas)
//!   retrievable as `Session::last_profile()` and pretty-printable in
//!   EXPLAIN-ANALYZE style. Off by default; a no-op behind one
//!   thread-local flag read when off (allocation-free — pinned by
//!   test).
//! * **Metrics registry** ([`metrics`]): `Prima::metrics()` returns a
//!   [`MetricsSnapshot`] unifying every layer's counters (via the
//!   [`StatsSnapshot`] trait) plus log-bucketed latency histograms per
//!   statement kind, rendered Prometheus-style by
//!   [`MetricsSnapshot::render_text`].
//! * **Slow-statement log** ([`slowlog`]): statements exceeding
//!   `PrimaBuilder::slow_statement_threshold` leave their full profile
//!   in a bounded ring, queryable via `Prima::slow_statements()`. A
//!   configured threshold force-enables profiling on every session (a
//!   threshold of zero therefore captures every statement).

pub mod histogram;
pub mod metrics;
pub mod profile;
pub mod slowlog;

pub use histogram::{bucket_bounds, bucket_index, HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use metrics::MetricsSnapshot;
pub use profile::{
    event, observed, span, span_guard, Probe, Span, SpanGuard, SpanKind, StatementKind,
    StatementProfile,
};
pub use prima_storage::stats::StatsSnapshot;
pub use slowlog::{SlowLog, DEFAULT_SLOW_LOG_CAPACITY};

use crate::session::ApiStats;
use crate::txn::{LockStatsSnapshot, TxnManager, VersionStatsSnapshot};
use prima_access::{AccessStatsSnapshot, AccessSystem};
use prima_storage::buffer::BufferStatsSnapshot;
use prima_storage::stats::IoSnapshot;
use prima_storage::StorageSystem;
use std::sync::Arc;
use std::time::Duration;

/// A simultaneous snapshot of every layer's counter struct — the delta
/// form of this is what a [`StatementProfile`] attributes to its
/// statement.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerCounters {
    pub buffer: BufferStatsSnapshot,
    pub io: IoSnapshot,
    pub access: AccessStatsSnapshot,
    pub lock: LockStatsSnapshot,
    pub version: VersionStatsSnapshot,
}

impl LayerCounters {
    /// Component-wise delta `self - earlier` across every family.
    pub fn delta_since(&self, earlier: &LayerCounters) -> LayerCounters {
        LayerCounters {
            buffer: StatsSnapshot::delta(&self.buffer, &earlier.buffer),
            io: StatsSnapshot::delta(&self.io, &earlier.io),
            access: StatsSnapshot::delta(&self.access, &earlier.access),
            lock: StatsSnapshot::delta(&self.lock, &earlier.lock),
            version: StatsSnapshot::delta(&self.version, &earlier.version),
        }
    }

    /// One `prima_<family>_<field> <value>` line per counter.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.buffer.render_into(&mut out);
        self.io.render_into(&mut out);
        self.access.render_into(&mut out);
        self.lock.render_into(&mut out);
        self.version.render_into(&mut out);
        out
    }
}

/// The kernel's observability hub: owned by `Prima`, shared with every
/// session. Holds the per-kind latency histograms (always on), the
/// slow-statement ring, and references to every layer's stats source so
/// snapshots are taken in one place.
pub struct Obs {
    storage: Arc<StorageSystem>,
    access: Arc<AccessSystem>,
    txn: Arc<TxnManager>,
    api: Arc<ApiStats>,
    statements: [LatencyHistogram; 5],
    slow: SlowLog,
    slow_threshold: Option<Duration>,
}

impl Obs {
    pub(crate) fn new(
        storage: Arc<StorageSystem>,
        access: Arc<AccessSystem>,
        txn: Arc<TxnManager>,
        api: Arc<ApiStats>,
        slow_threshold: Option<Duration>,
        slow_log_capacity: usize,
    ) -> Arc<Obs> {
        Arc::new(Obs {
            storage,
            access,
            txn,
            api,
            statements: Default::default(),
            slow: SlowLog::new(slow_log_capacity),
            slow_threshold,
        })
    }

    /// Whether a slow-statement threshold forces profiling on for every
    /// statement (profiles cannot be reconstructed after the fact, so a
    /// configured threshold keeps the profiler running).
    pub fn profile_all(&self) -> bool {
        self.slow_threshold.is_some()
    }

    /// The configured slow-statement threshold, if any.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.slow_threshold
    }

    /// One simultaneous snapshot of every layer's counters.
    pub fn layer_counters(&self) -> LayerCounters {
        LayerCounters {
            buffer: self.storage.buffer().stats().detail(),
            io: self.storage.io_stats().snapshot(),
            access: self.access.stats().snapshot(),
            lock: self.txn.lock_table().stats().snapshot(),
            version: self.txn.versions().stats(),
        }
    }

    /// Records one completed statement into its kind's histogram.
    /// Allocation-free; runs for every statement, profiled or not.
    pub fn record_statement(&self, kind: StatementKind, total: Duration) {
        self.statements[kind.index()].record(total.as_nanos() as u64);
    }

    /// Offers a finished profile to the slow log (kept when the
    /// configured threshold is met).
    pub fn note_profile(&self, profile: &StatementProfile) {
        if let Some(threshold) = self.slow_threshold {
            if profile.total >= threshold {
                self.slow.push(profile.clone());
            }
        }
    }

    /// The slow-statement ring's current contents, oldest first.
    pub fn slow_statements(&self) -> Vec<StatementProfile> {
        self.slow.entries()
    }

    /// The unified kernel-wide metrics snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let counters = self.layer_counters();
        let mut statements = [HistogramSnapshot::default(); 5];
        for kind in StatementKind::ALL {
            statements[kind.index()] = self.statements[kind.index()].snapshot();
        }
        MetricsSnapshot {
            buffer: counters.buffer,
            io: counters.io,
            access: counters.access,
            lock: counters.lock,
            version: counters.version,
            api: self.api.snapshot(),
            statements,
        }
    }
}
