//! Error type of the PRIMA kernel (data-system level and above).

use prima_access::AccessError;
use prima_mad::mql::ParseError;
use prima_mad::SchemaError;
use prima_storage::StorageError;
use std::fmt;

pub type PrimaResult<T> = Result<T, PrimaError>;

/// Errors surfaced at the MAD interface.
#[derive(Debug)]
pub enum PrimaError {
    /// MQL / DDL / LDL syntax error.
    Parse(ParseError),
    /// Schema-level violation.
    Schema(SchemaError),
    /// Access-system failure.
    Access(AccessError),
    /// Storage-system failure.
    Storage(StorageError),
    /// Query validation: a FROM component name is neither an atom type
    /// nor a molecule type.
    UnknownComponent(String),
    /// Query validation: a predicate/select reference cannot be resolved.
    UnresolvedReference { reference: String, detail: String },
    /// Query validation: no (unique) association connects two components.
    NoAssociation { from: String, to: String, detail: String },
    /// Recursive molecule queries need a seed qualification
    /// (`name (0).attr = …`).
    MissingSeed(String),
    /// DML statement invalid (e.g. assignment to unknown attribute).
    BadStatement(String),
    /// A statement with parameter placeholders was executed without (or
    /// with too few) bound values — prepare and `bind` it first.
    UnboundParameter { slot: u16, detail: String },
    /// A bound parameter value does not fit the attribute it is compared
    /// with / assigned to.
    ParamTypeMismatch { slot: u16, expected: String, got: String },
    /// Transaction-level conflict or misuse.
    Txn(crate::txn::TxnError),
    /// Durability / restart-recovery failure (missing or corrupt
    /// checkpoint metadata, undecodable log payloads, misconfiguration
    /// of a durable kernel).
    Recovery(String),
}

impl fmt::Display for PrimaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimaError::Parse(e) => write!(f, "parse error: {e}"),
            PrimaError::Schema(e) => write!(f, "schema error: {e}"),
            PrimaError::Access(e) => write!(f, "access error: {e}"),
            PrimaError::Storage(e) => write!(f, "storage error: {e}"),
            PrimaError::UnknownComponent(n) => {
                write!(f, "unknown component '{n}' in FROM clause")
            }
            PrimaError::UnresolvedReference { reference, detail } => {
                write!(f, "cannot resolve '{reference}': {detail}")
            }
            PrimaError::NoAssociation { from, to, detail } => {
                write!(f, "no association from '{from}' to '{to}': {detail}")
            }
            PrimaError::MissingSeed(n) => {
                write!(f, "recursive molecule '{n}' needs a seed qualification")
            }
            PrimaError::BadStatement(d) => write!(f, "bad statement: {d}"),
            PrimaError::UnboundParameter { slot, detail } => {
                write!(f, "parameter {} is not bound: {detail}", slot + 1)
            }
            PrimaError::ParamTypeMismatch { slot, expected, got } => {
                write!(
                    f,
                    "parameter {} type mismatch: expected {expected}, got {got}",
                    slot + 1
                )
            }
            PrimaError::Txn(e) => write!(f, "transaction error: {e}"),
            PrimaError::Recovery(d) => write!(f, "recovery error: {d}"),
        }
    }
}

impl PrimaError {
    /// Whether this error is a transaction-layer lock conflict — an
    /// immediate [`TxnError::LockConflict`] (no-wait mode, or a full wait
    /// queue) or a [`TxnError::LockTimeout`] after a bounded wait. Both
    /// mean "someone else holds what you need *right now*": callers
    /// seeing `true` should roll back their session and retry the
    /// statement.
    ///
    /// [`TxnError::LockConflict`]: crate::txn::TxnError::LockConflict
    /// [`TxnError::LockTimeout`]: crate::txn::TxnError::LockTimeout
    pub fn is_lock_conflict(&self) -> bool {
        use crate::txn::TxnError;
        matches!(
            self,
            PrimaError::Txn(TxnError::LockConflict { .. })
                | PrimaError::Txn(TxnError::LockTimeout { .. })
        )
    }

    /// Whether the failed statement can be expected to succeed when
    /// re-run after a rollback: every [`is_lock_conflict`] error plus
    /// deadlock-victim aborts. Anything else (parse, schema, storage,
    /// misuse) is a real failure that retrying will not fix.
    /// `Session`'s retry policy keys off this.
    ///
    /// [`is_lock_conflict`]: PrimaError::is_lock_conflict
    pub fn is_retryable(&self) -> bool {
        self.is_lock_conflict()
            || matches!(self, PrimaError::Txn(crate::txn::TxnError::Deadlock { .. }))
    }
}

impl std::error::Error for PrimaError {}

impl From<ParseError> for PrimaError {
    fn from(e: ParseError) -> Self {
        PrimaError::Parse(e)
    }
}

impl From<SchemaError> for PrimaError {
    fn from(e: SchemaError) -> Self {
        PrimaError::Schema(e)
    }
}

impl From<AccessError> for PrimaError {
    fn from(e: AccessError) -> Self {
        PrimaError::Access(e)
    }
}

impl From<StorageError> for PrimaError {
    fn from(e: StorageError) -> Self {
        PrimaError::Storage(e)
    }
}

impl From<crate::txn::TxnError> for PrimaError {
    fn from(e: crate::txn::TxnError) -> Self {
        PrimaError::Txn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = PrimaError::UnknownComponent("blob".into());
        assert!(e.to_string().contains("blob"));
        let e = PrimaError::MissingSeed("piece_list".into());
        assert!(e.to_string().contains("seed"));
    }
}
