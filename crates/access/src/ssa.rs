//! Simple search arguments (SSAs).
//!
//! Scans accept a "simple search argument decidable on each atom"
//! (Section 3.2) — a predicate over one atom's attribute values, with no
//! cross-atom references. The data system pushes qualifications down to
//! scans in this form ("qualifications 'pushed down' for efficiency
//! reasons", Section 3.1).

use crate::atom::Atom;
use prima_mad::value::Value;
use std::cmp::Ordering;

/// Comparison operators available in SSAs (and reused by MQL's simple
/// terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with operand sides swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A simple search argument over one atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Ssa {
    /// Always true (no restriction).
    True,
    /// `attr op constant`.
    Cmp { attr: usize, op: CmpOp, value: Value },
    /// `attr op ?slot` — a prepared-statement parameter that has not been
    /// bound yet. [`Ssa::bind`] turns it into [`Ssa::Cmp`]; evaluating an
    /// unbound parameter matches nothing (prepared execution always binds
    /// before running).
    CmpParam { attr: usize, op: CmpOp, slot: u16 },
    /// `attr = EMPTY` — null / unset reference / empty set (Table 2.1c).
    IsEmpty { attr: usize },
    /// `attr <> EMPTY`.
    NotEmpty { attr: usize },
    /// The set-valued attribute contains the given reference/value.
    Contains { attr: usize, value: Value },
    And(Vec<Ssa>),
    Or(Vec<Ssa>),
    Not(Box<Ssa>),
}

impl Ssa {
    /// Evaluates against an atom's value vector. Attributes projected away
    /// (Null) behave like SQL: comparisons against them are false.
    pub fn eval(&self, atom: &Atom) -> bool {
        self.eval_values(&atom.values)
    }

    /// Evaluates against a raw value vector.
    pub fn eval_values(&self, values: &[Value]) -> bool {
        match self {
            Ssa::True => true,
            Ssa::Cmp { attr, op, value } => match values.get(*attr) {
                None | Some(Value::Null) => false,
                Some(v) => op.eval(v.total_cmp(value)),
            },
            Ssa::CmpParam { .. } => false,
            Ssa::IsEmpty { attr } => {
                values.get(*attr).is_some_and(prima_mad::Value::is_empty_like)
            }
            Ssa::NotEmpty { attr } => {
                values.get(*attr).is_some_and(|v| !v.is_empty_like())
            }
            Ssa::Contains { attr, value } => match values.get(*attr) {
                Some(Value::RefSet(ids)) => match value {
                    Value::Ref(Some(id)) | Value::Id(id) => ids.contains(id),
                    _ => false,
                },
                Some(Value::Set(vs)) | Some(Value::List(vs)) | Some(Value::Array(vs)) => {
                    vs.iter().any(|v| v.sem_eq(value))
                }
                _ => false,
            },
            Ssa::And(ts) => ts.iter().all(|t| t.eval_values(values)),
            Ssa::Or(ts) => ts.iter().any(|t| t.eval_values(values)),
            Ssa::Not(t) => !t.eval_values(values),
        }
    }

    /// Convenience: equality SSA.
    pub fn eq(attr: usize, value: Value) -> Ssa {
        Ssa::Cmp { attr, op: CmpOp::Eq, value }
    }

    /// Conjunction helper that flattens nested `And`s and drops `True`s.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn and(terms: Vec<Ssa>) -> Ssa {
        let mut flat = Vec::new();
        for t in terms {
            match t {
                Ssa::True => {}
                Ssa::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ssa::True,
            // lint: allow(error-hygiene, this match arm runs only when flat.len() == 1)
            1 => flat.pop().unwrap(),
            _ => Ssa::And(flat),
        }
    }

    /// A copy with every [`Ssa::CmpParam`] replaced by a concrete
    /// [`Ssa::Cmp`] against the bound parameter values (prepared-statement
    /// execution; slots out of range stay unbound).
    pub fn bind(&self, params: &[Value]) -> Ssa {
        match self {
            Ssa::CmpParam { attr, op, slot } => match params.get(*slot as usize) {
                Some(v) => Ssa::Cmp { attr: *attr, op: *op, value: v.clone() },
                None => self.clone(),
            },
            Ssa::And(ts) => Ssa::And(ts.iter().map(|t| t.bind(params)).collect()),
            Ssa::Or(ts) => Ssa::Or(ts.iter().map(|t| t.bind(params)).collect()),
            Ssa::Not(t) => Ssa::Not(Box::new(t.bind(params))),
            leaf => leaf.clone(),
        }
    }

    /// Whether any unbound parameter placeholder remains.
    pub fn has_params(&self) -> bool {
        match self {
            Ssa::CmpParam { .. } => true,
            Ssa::And(ts) | Ssa::Or(ts) => ts.iter().any(Ssa::has_params),
            Ssa::Not(t) => t.has_params(),
            _ => false,
        }
    }

    /// Attribute indices the SSA touches (used for partition routing: a
    /// partition can decide an SSA only if it stores all touched
    /// attributes).
    pub fn attrs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<usize>) {
        match self {
            Ssa::True => {}
            Ssa::Cmp { attr, .. }
            | Ssa::CmpParam { attr, .. }
            | Ssa::IsEmpty { attr }
            | Ssa::NotEmpty { attr }
            | Ssa::Contains { attr, .. } => out.push(*attr),
            Ssa::And(ts) | Ssa::Or(ts) => ts.iter().for_each(|t| t.collect_attrs(out)),
            Ssa::Not(t) => t.collect_attrs(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_mad::value::AtomId;

    fn atom(values: Vec<Value>) -> Atom {
        Atom::new(AtomId::new(0, 1), values)
    }

    #[test]
    fn cmp_semantics() {
        let a = atom(vec![Value::Int(10), Value::Str("cube".into())]);
        assert!(Ssa::Cmp { attr: 0, op: CmpOp::Gt, value: Value::Int(5) }.eval(&a));
        assert!(Ssa::Cmp { attr: 0, op: CmpOp::Le, value: Value::Real(10.0) }.eval(&a));
        assert!(!Ssa::Cmp { attr: 0, op: CmpOp::Ne, value: Value::Int(10) }.eval(&a));
        assert!(Ssa::eq(1, Value::Str("cube".into())).eval(&a));
    }

    #[test]
    fn null_comparisons_are_false() {
        let a = atom(vec![Value::Null]);
        assert!(!Ssa::eq(0, Value::Int(0)).eval(&a));
        assert!(!Ssa::Cmp { attr: 0, op: CmpOp::Ne, value: Value::Int(0) }.eval(&a));
        // But IsEmpty sees it.
        assert!(Ssa::IsEmpty { attr: 0 }.eval(&a));
    }

    #[test]
    fn empty_and_contains() {
        let a = atom(vec![
            Value::RefSet(vec![]),
            Value::ref_set(vec![AtomId::new(1, 5)]),
            Value::List(vec![Value::Int(1), Value::Int(2)]),
        ]);
        assert!(Ssa::IsEmpty { attr: 0 }.eval(&a));
        assert!(Ssa::NotEmpty { attr: 1 }.eval(&a));
        assert!(Ssa::Contains { attr: 1, value: Value::Ref(Some(AtomId::new(1, 5))) }.eval(&a));
        assert!(!Ssa::Contains { attr: 1, value: Value::Ref(Some(AtomId::new(1, 6))) }.eval(&a));
        assert!(Ssa::Contains { attr: 2, value: Value::Int(2) }.eval(&a));
    }

    #[test]
    fn boolean_combinators() {
        let a = atom(vec![Value::Int(3)]);
        let lt5 = Ssa::Cmp { attr: 0, op: CmpOp::Lt, value: Value::Int(5) };
        let gt4 = Ssa::Cmp { attr: 0, op: CmpOp::Gt, value: Value::Int(4) };
        assert!(Ssa::And(vec![lt5.clone(), Ssa::Not(Box::new(gt4.clone()))]).eval(&a));
        assert!(Ssa::Or(vec![gt4, lt5]).eval(&a));
        assert!(Ssa::True.eval(&a));
    }

    #[test]
    fn and_flattening() {
        let t = Ssa::and(vec![
            Ssa::True,
            Ssa::and(vec![Ssa::eq(0, Value::Int(1)), Ssa::True]),
            Ssa::eq(1, Value::Int(2)),
        ]);
        match &t {
            Ssa::And(xs) => assert_eq!(xs.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(Ssa::and(vec![]), Ssa::True);
        assert_eq!(Ssa::and(vec![Ssa::eq(0, Value::Int(1))]), Ssa::eq(0, Value::Int(1)));
    }

    #[test]
    fn attrs_collection() {
        let t = Ssa::And(vec![
            Ssa::eq(2, Value::Int(1)),
            Ssa::Or(vec![Ssa::IsEmpty { attr: 0 }, Ssa::eq(2, Value::Int(9))]),
        ]);
        assert_eq!(t.attrs(), vec![0, 2]);
    }

    #[test]
    fn param_binding() {
        let a = atom(vec![Value::Int(10)]);
        let p = Ssa::And(vec![
            Ssa::CmpParam { attr: 0, op: CmpOp::Eq, slot: 0 },
            Ssa::True,
        ]);
        assert!(p.has_params());
        assert!(!p.eval(&a), "unbound parameters match nothing");
        let bound = p.bind(&[Value::Int(10)]);
        assert!(!bound.has_params());
        assert!(bound.eval(&a));
        assert!(!p.bind(&[Value::Int(11)]).eval(&a));
        // Out-of-range slots stay unbound.
        assert!(Ssa::CmpParam { attr: 0, op: CmpOp::Eq, slot: 3 }
            .bind(&[Value::Int(1)])
            .has_params());
    }

    #[test]
    fn flip_is_involutive_on_order_ops() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
    }
}
