//! # prima-storage — the Storage System of the PRIMA kernel
//!
//! This crate implements the lowest layer of the PRIMA architecture
//! (Fig. 3.1 of the paper): the *storage system*, which maps **segments**,
//! **pages** and **page sequences** onto **files** and **blocks** of a
//! (simulated) disk.
//!
//! Key properties taken from Section 3.3 of the paper:
//!
//! * Segments are divided into pages of equal size, but — in contrast to
//!   conventional systems — the page size of each segment can be chosen
//!   among **1/2, 1, 2, 4 or 8 KByte** ([`PageSize`]). These are exactly the
//!   block sizes the underlying file manager supports, so the page↔block
//!   mapping is trivial.
//! * A single database **buffer** holds pages of *different* sizes. The
//!   well-known LRU algorithm is altered so that one pool can handle mixed
//!   page sizes ([`buffer::BufferManager`]); a statically partitioned pool
//!   ([`buffer::PartitionedBuffer`]) is provided as the baseline the paper
//!   argues against.
//! * **Page sequences** treat an arbitrary number of pages as a whole: one
//!   header page plus component pages, supported by a cluster mechanism of
//!   the file manager enabling optimal (chained) I/O ([`page_seq`]).
//!
//! The disk itself is simulated ([`disk::SimDisk`]): the paper ran on 1987
//! hardware via the INCAS file manager \[Ne87\]; what its performance claims
//! depend on are *I/O counts, block sizes and contiguity*, all of which the
//! simulator measures faithfully (see `DESIGN.md`, substitution table).

pub mod buffer;
pub mod disk;
pub mod error;
pub mod page;
pub mod page_seq;
pub mod segment;
pub mod stats;

pub use buffer::{
    BufferManager, BufferStats, BufferStatsSnapshot, PageGuard, PartitionedBuffer,
    ReplacementPolicy,
};
pub use disk::{BlockAddr, BlockDevice, CostModel, SimDisk};
pub use error::{StorageError, StorageResult};
pub use page::{Page, PageId, PageSize, PageType, PAGE_HEADER_LEN};
pub use page_seq::{PageSeqHandle, PageSequence};
pub use segment::{Segment, SegmentId, StorageSystem};
pub use stats::IoStats;
