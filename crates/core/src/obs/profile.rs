//! The statement profiler: hierarchical timed spans.
//!
//! A profiled statement installs a thread-local *recorder* plus the
//! storage crate's probe hook for exactly its own duration. Scoped code
//! regions ([`span`] / [`span_guard`]) open a frame on the recorder's
//! stack; hot leaf events ([`event`], and everything arriving through
//! the storage hook) merge into the currently open frame. On close a
//! frame merges into its parent **by kind**, so the thousands of buffer
//! fixes of a large assembly collapse into one child per kind with a
//! count — the tree stays bounded by the number of distinct span kinds
//! per level, not by data volume.
//!
//! When no recorder is installed every entry point is a no-op behind a
//! single thread-local flag read: no clock read, no allocation — pinned
//! by the counting-allocator test in `tests/observability.rs`.

use super::LayerCounters;
use prima_storage::probe::{self, ProbeEvent};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// What a profiled statement was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatementKind {
    Select,
    Insert,
    Modify,
    Delete,
    Commit,
}

impl StatementKind {
    /// Every kind, in histogram-index order.
    pub const ALL: [StatementKind; 5] = [
        StatementKind::Select,
        StatementKind::Insert,
        StatementKind::Modify,
        StatementKind::Delete,
        StatementKind::Commit,
    ];

    /// Index into per-kind arrays (histograms).
    pub fn index(self) -> usize {
        match self {
            StatementKind::Select => 0,
            StatementKind::Insert => 1,
            StatementKind::Modify => 2,
            StatementKind::Delete => 3,
            StatementKind::Commit => 4,
        }
    }

    /// Lower-case label used in metric renderings.
    pub fn label(self) -> &'static str {
        match self {
            StatementKind::Select => "select",
            StatementKind::Insert => "insert",
            StatementKind::Modify => "modify",
            StatementKind::Delete => "delete",
            StatementKind::Commit => "commit",
        }
    }
}

/// One kind of timed region in a statement profile, covering every
/// layer of the Fig. 3.1 stack a statement crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole statement (root of every profile).
    Statement,
    /// MQL lexing + parsing.
    Parse,
    /// Validation / plan construction.
    Plan,
    /// Pinning an MVCC snapshot for a lock-free read.
    SnapshotPin,
    /// One lock-table acquisition (leaf; merged per statement).
    LockAcquire,
    /// Time spent parked in the lock table's wait queue (leaf).
    LockWait,
    /// Root access: key lookup / access path / scan.
    RootAccess,
    /// One level of vertical molecule assembly (level-batched reads +
    /// child materialisation).
    AssemblyLevel(u32),
    /// DML execution under the transaction (qualification + apply).
    DmlApply,
    /// Buffer guard acquisition, including the load on a miss (leaf,
    /// from the storage probe).
    BufferFix,
    /// Device read on a buffer miss (leaf, from the storage probe).
    PageLoad,
    /// WAL record append to the group buffer (leaf; bytes = record).
    WalAppend,
    /// WAL force to the device's log area (leaf; bytes = batch).
    WalForce,
    /// Page-grouped batched read in the access system (leaf;
    /// bytes = atoms requested).
    BatchRead,
}

impl SpanKind {
    /// Whether this kind is recorded as a *scoped frame* (open/close on
    /// the recorder stack) rather than a leaf event. Frames at the same
    /// level are disjoint sub-intervals of their parent; leaf events may
    /// overlap each other (a `BufferFix` leaf's duration includes the
    /// `PageLoad` it triggered on a miss).
    pub fn is_scoped(self) -> bool {
        matches!(
            self,
            SpanKind::Statement
                | SpanKind::Parse
                | SpanKind::Plan
                | SpanKind::SnapshotPin
                | SpanKind::RootAccess
                | SpanKind::AssemblyLevel(_)
                | SpanKind::DmlApply
        )
    }

    /// Display label (assembly levels carry their level number).
    pub fn label(self) -> String {
        match self {
            SpanKind::Statement => "statement".into(),
            SpanKind::Parse => "parse".into(),
            SpanKind::Plan => "plan".into(),
            SpanKind::SnapshotPin => "snapshot_pin".into(),
            SpanKind::LockAcquire => "lock_acquire".into(),
            SpanKind::LockWait => "lock_wait".into(),
            SpanKind::RootAccess => "root_access".into(),
            SpanKind::AssemblyLevel(n) => format!("assembly_level_{n}"),
            SpanKind::DmlApply => "dml_apply".into(),
            SpanKind::BufferFix => "buffer_fix".into(),
            SpanKind::PageLoad => "page_load".into(),
            SpanKind::WalAppend => "wal_append".into(),
            SpanKind::WalForce => "wal_force".into(),
            SpanKind::BatchRead => "batch_read".into(),
        }
    }
}

/// One node of a statement's span tree: a kind, the merged duration and
/// occurrence count, an optional byte volume, and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub kind: SpanKind,
    pub nanos: u64,
    pub count: u64,
    pub bytes: u64,
    pub children: Vec<Span>,
}

impl Span {
    fn new(kind: SpanKind) -> Span {
        Span { kind, nanos: 0, count: 1, bytes: 0, children: Vec::new() }
    }

    /// Merges `other` into `self` (same kind): durations, counts and
    /// bytes add; child lists merge recursively by kind.
    fn absorb(&mut self, other: Span) {
        self.nanos += other.nanos;
        self.count += other.count;
        self.bytes += other.bytes;
        for child in other.children {
            merge_child(&mut self.children, child);
        }
    }

    /// The first descendant (depth-first, self included) of `kind`.
    pub fn find(&self, kind: SpanKind) -> Option<&Span> {
        if self.kind == kind {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(kind))
    }

    /// Sum of direct children's durations.
    pub fn child_nanos(&self) -> u64 {
        self.children.iter().map(|c| c.nanos).sum()
    }

    /// Tree-wide `(count, nanos, bytes)` totals of every node of `kind`
    /// (self included) — leaf events merge per enclosing frame, so one
    /// kind can appear under several frames of the same tree.
    pub fn totals(&self, kind: SpanKind) -> (u64, u64, u64) {
        let own = if self.kind == kind { (self.count, self.nanos, self.bytes) } else { (0, 0, 0) };
        self.children.iter().map(|c| c.totals(kind)).fold(own, |(c, n, b), (dc, dn, db)| {
            (c + dc, n + dn, b + db)
        })
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let _ = writeln!(
            out,
            "{:indent$}{:<24} {:>12} ns  ×{}{}",
            "",
            self.kind.label(),
            self.nanos,
            self.count,
            if self.bytes > 0 { format!("  {} bytes", self.bytes) } else { String::new() },
            indent = depth * 2,
        );
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

fn merge_child(children: &mut Vec<Span>, span: Span) {
    match children.iter_mut().find(|c| c.kind == span.kind) {
        Some(existing) => existing.absorb(span),
        None => children.push(span),
    }
}

// ---------------------------------------------------------------------
// Thread-local recorder
// ---------------------------------------------------------------------

struct Frame {
    span: Span,
    started: Instant,
}

struct Recorder {
    stack: Vec<Frame>,
}

thread_local! {
    /// Fast-path flag: every entry point reads this one `Cell` and
    /// bails before touching the clock or the `RefCell` when off.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

#[inline]
fn active() -> bool {
    ACTIVE.with(std::cell::Cell::get)
}

fn open_frame(kind: SpanKind) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.stack.push(Frame { span: Span::new(kind), started: Instant::now() });
        }
    });
}

#[allow(clippy::unwrap_used, clippy::expect_used)]
fn close_frame() {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if rec.stack.len() > 1 {
                // lint: allow(error-hygiene, guarded by the len > 1 check above)
                let mut frame = rec.stack.pop().expect("len checked");
                frame.span.nanos = frame.started.elapsed().as_nanos() as u64;
                // lint: allow(error-hygiene, the root frame is never popped while a child is being folded)
                let parent = rec.stack.last_mut().expect("root frame remains");
                merge_child(&mut parent.span.children, frame.span);
            }
        }
    });
}

/// Records a leaf event into the currently open frame. No-op (one flag
/// read) when no recorder is installed on this thread.
#[inline]
pub fn event(kind: SpanKind, nanos: u64, bytes: u64) {
    if !active() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            if let Some(top) = rec.stack.last_mut() {
                let mut leaf = Span::new(kind);
                leaf.nanos = nanos;
                leaf.bytes = bytes;
                merge_child(&mut top.span.children, leaf);
            }
        }
    });
}

/// Runs `f` inside a scoped span of `kind`. No-op wrapper (one flag
/// read, `f` runs untouched) when no recorder is installed.
pub fn span<R>(kind: SpanKind, f: impl FnOnce() -> R) -> R {
    let _guard = span_guard(kind);
    f()
}

/// Runs `f`, recording it as a *leaf* event of `kind` (timed, but any
/// spans opened inside `f` attach to the enclosing frame, not to this
/// event). For hot call sites where a full frame would be overkill.
pub fn observed<R>(kind: SpanKind, f: impl FnOnce() -> R) -> R {
    if !active() {
        return f();
    }
    let started = Instant::now();
    let out = f();
    event(kind, started.elapsed().as_nanos() as u64, 0);
    out
}

/// RAII span: opens a frame now, closes it on drop (so `?`, `break` and
/// early `return` inside the region all close the span correctly).
pub fn span_guard(kind: SpanKind) -> SpanGuard {
    if !active() {
        return SpanGuard { open: false };
    }
    open_frame(kind);
    SpanGuard { open: true }
}

/// Guard returned by [`span_guard`].
pub struct SpanGuard {
    open: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.open {
            close_frame();
        }
    }
}

/// The storage-probe bridge: maps storage-layer events into leaf spans
/// of the current frame. Installed per profiled statement.
fn storage_hook(ev: ProbeEvent, nanos: u64, bytes: u64) {
    let kind = match ev {
        ProbeEvent::BufferFix => SpanKind::BufferFix,
        ProbeEvent::PageLoad => SpanKind::PageLoad,
        ProbeEvent::WalAppend => SpanKind::WalAppend,
        ProbeEvent::WalForce => SpanKind::WalForce,
        ProbeEvent::BatchRead => SpanKind::BatchRead,
    };
    event(kind, nanos, bytes);
}

// ---------------------------------------------------------------------
// Probe: the per-statement recorder handle
// ---------------------------------------------------------------------

/// Handle owning one statement's recording session: installs the
/// thread-local recorder and the storage probe hook on
/// [`Probe::start`], uninstalls both and yields the finished span tree
/// on [`Probe::finish`]. Starting while another probe is active on the
/// thread yields an inert handle (re-entrancy guard), so nested scopes
/// attribute to the outermost statement.
pub struct Probe {
    active: bool,
}

impl Probe {
    /// Begins recording on this thread (inert if already recording).
    pub fn start() -> Probe {
        if active() {
            return Probe { active: false };
        }
        RECORDER.with(|r| {
            *r.borrow_mut() = Some(Recorder {
                stack: vec![Frame { span: Span::new(SpanKind::Statement), started: Instant::now() }],
            });
        });
        ACTIVE.with(|a| a.set(true));
        probe::set_thread_hook(Some(storage_hook));
        Probe { active: true }
    }

    /// Whether this handle owns the thread's recording session.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Ends recording and returns the root span (duration = `total`).
    /// An inert probe returns an empty root.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn finish(self, total: Duration) -> Span {
        if !self.active {
            return Span::new(SpanKind::Statement);
        }
        probe::set_thread_hook(None);
        ACTIVE.with(|a| a.set(false));
        RECORDER.with(|r| {
            let rec = r.borrow_mut().take();
            // lint: allow(error-hygiene, probe construction always installs a recorder before handing out the probe)
            let mut rec = rec.expect("active probe owns a recorder");
            // Close any frames a panic-free caller should already have
            // closed; being defensive keeps a malformed tree from
            // panicking the statement that produced it.
            while rec.stack.len() > 1 {
                // lint: allow(error-hygiene, guarded by the len check above)
                let mut frame = rec.stack.pop().expect("len checked");
                frame.span.nanos = frame.started.elapsed().as_nanos() as u64;
                // lint: allow(error-hygiene, the root frame is never popped while a child is being folded)
                let parent = rec.stack.last_mut().expect("root remains");
                merge_child(&mut parent.span.children, frame.span);
            }
            // lint: allow(error-hygiene, finish runs once and the root frame is still on the stack here)
            let mut root = rec.stack.pop().expect("root frame").span;
            root.nanos = total.as_nanos() as u64;
            root
        })
    }
}

// ---------------------------------------------------------------------
// StatementProfile
// ---------------------------------------------------------------------

/// Everything recorded about one profiled statement: the span tree plus
/// the per-layer counter deltas taken across the statement's execution.
#[derive(Debug, Clone)]
pub struct StatementProfile {
    pub kind: StatementKind,
    /// The statement text (or a placeholder for non-MQL scopes such as
    /// commits and cursor fetches).
    pub statement: String,
    pub total: Duration,
    /// Root of the span tree ([`SpanKind::Statement`]).
    pub root: Span,
    /// What each layer's counters moved by while the statement ran.
    pub counters: LayerCounters,
}

impl StatementProfile {
    /// Structural well-formedness: the root is a `Statement` span and,
    /// recursively, every node's *scoped* children (see
    /// [`SpanKind::is_scoped`]) sum to no more than the node's own
    /// duration — frames are disjoint sub-intervals of their parent's
    /// interval, so this must hold on a monotone clock. Leaf events are
    /// exempt: they may overlap (a `BufferFix` includes the `PageLoad`
    /// it triggered).
    pub fn validate(&self) -> Result<(), String> {
        if self.root.kind != SpanKind::Statement {
            return Err(format!("root span is {:?}, expected Statement", self.root.kind));
        }
        fn check(span: &Span, path: &str) -> Result<(), String> {
            let child_sum: u64 =
                span.children.iter().filter(|c| c.kind.is_scoped()).map(|c| c.nanos).sum();
            if child_sum > span.nanos {
                return Err(format!(
                    "span {path}/{}: scoped children sum to {} ns > own {} ns",
                    span.kind.label(),
                    child_sum,
                    span.nanos
                ));
            }
            for c in &span.children {
                check(c, &format!("{path}/{}", span.kind.label()))?;
            }
            Ok(())
        }
        check(&self.root, "")
    }

    /// EXPLAIN-ANALYZE-style rendering: the span tree with durations and
    /// counts, followed by the per-layer counter deltas.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "-- {} ({:?}): {} ns total",
            self.kind.label(),
            self.statement,
            self.total.as_nanos()
        );
        self.root.render_into(&mut out, 0);
        out.push_str(&self.counters.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_merge_by_kind() {
        let probe = Probe::start();
        assert!(probe.is_active());
        span(SpanKind::RootAccess, || {
            event(SpanKind::BufferFix, 10, 0);
            event(SpanKind::BufferFix, 5, 0);
        });
        for level in 0..2u32 {
            let _g = span_guard(SpanKind::AssemblyLevel(level));
            event(SpanKind::BatchRead, 7, 3);
        }
        // A second molecule's levels merge into the same children.
        {
            let _g = span_guard(SpanKind::AssemblyLevel(0));
            event(SpanKind::BatchRead, 7, 3);
        }
        let root = probe.finish(Duration::from_micros(100));
        assert_eq!(root.kind, SpanKind::Statement);
        let ra = root.find(SpanKind::RootAccess).expect("root access span");
        let fix = ra.find(SpanKind::BufferFix).expect("merged buffer fixes");
        assert_eq!(fix.count, 2);
        assert_eq!(fix.nanos, 15);
        let l0 = root.find(SpanKind::AssemblyLevel(0)).expect("level 0");
        assert_eq!(l0.count, 2, "two molecules' level 0 merged");
        assert_eq!(l0.find(SpanKind::BatchRead).unwrap().bytes, 6);
        assert!(root.find(SpanKind::AssemblyLevel(1)).is_some());
        // Recorder fully uninstalled.
        assert!(!active());
        assert!(!prima_storage::probe::enabled());
    }

    #[test]
    fn inert_when_nested() {
        let outer = Probe::start();
        let inner = Probe::start();
        assert!(!inner.is_active());
        let empty = inner.finish(Duration::ZERO);
        assert!(empty.children.is_empty());
        assert!(active(), "inner finish must not tear down the outer session");
        outer.finish(Duration::ZERO);
        assert!(!active());
    }

    #[test]
    fn disabled_entry_points_are_inert() {
        assert!(!active());
        event(SpanKind::BufferFix, 1, 0);
        assert_eq!(span(SpanKind::Parse, || 42), 42);
        assert_eq!(observed(SpanKind::LockAcquire, || 7), 7);
        drop(span_guard(SpanKind::RootAccess));
    }
}
