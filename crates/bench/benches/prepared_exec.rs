//! BENCH-2 — prepared execution vs. re-parsing.
//!
//! The session API's contract is parse/plan once, bind + execute many.
//! This harness measures the same Table-2.1a-style key query three ways:
//!
//! * `one_shot` — `Prima::query` re-lexes, re-parses and re-validates the
//!   MQL text on every call;
//! * `prepared` — `Prepared::bind` + `execute` per call (plan reuse, only
//!   the parameter value changes);
//! * `cursor_first` — prepared + streaming cursor, pulling only the first
//!   molecule of an unbounded scan (piecewise delivery: cost scales with
//!   what is consumed, not with the result size).
//!
//! Alongside wall-clock, the `ApiStats` plan counters are reported: the
//! prepared series must show zero additional parses/plans across its
//! executions.

use criterion::{criterion_group, criterion_main, Criterion};
use prima_workloads::exec;
use prima::{QueryOptions, Value};
use prima_bench::{brep_db, report, report_metrics};

fn bench_prepared_exec(c: &mut Criterion) {
    let db = brep_db(24);
    let mut g = c.benchmark_group("prepared_exec");
    g.sample_size(200);

    let keyed = "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 7";

    // Baseline: full parse + validate + plan + execute per call.
    let before = db.api_stats().snapshot();
    let mut runs = 0u64;
    g.bench_function("one_shot_reparse", |b| {
        b.iter(|| {
            runs += 1;
            exec::query(&db, keyed).unwrap()
        })
    });
    let one_shot_delta = db.api_stats().snapshot();
    report(
        "BENCH-2",
        "one_shot/parses_per_exec",
        "ratio",
        format!(
            "{:.2}",
            (one_shot_delta.statements_parsed - before.statements_parsed) as f64
                / runs.max(1) as f64
        ),
    );

    // Prepared: bind + execute per call against the cached plan.
    let session = db.session();
    let mut stmt = session
        .prepare("SELECT ALL FROM brep-face-edge-point WHERE brep_no = ?")
        .unwrap();
    let opts = QueryOptions::default();
    let before = db.api_stats().snapshot();
    let mut execs = 0u64;
    g.bench_function("prepared_bind_execute", |b| {
        b.iter(|| {
            execs += 1;
            stmt.bind(&[Value::Int(7)]).unwrap();
            stmt.query(&opts).unwrap()
        })
    });
    let after = db.api_stats().snapshot();
    assert_eq!(
        after.statements_parsed, before.statements_parsed,
        "prepared executions must not parse"
    );
    assert_eq!(after.plans_built, before.plans_built, "prepared executions must not re-plan");
    report("BENCH-2", "prepared/parses_per_exec", "ratio", "0.00");
    report("BENCH-2", "prepared/plan_reuses", "count", after.plan_reuses - before.plan_reuses);
    let _ = execs;

    // Streaming: pull one molecule of an unbounded result.
    let mut wide = session
        .prepare("SELECT ALL FROM brep-face-edge-point WHERE brep_no > ?")
        .unwrap();
    wide.bind(&[Value::Int(0)]).unwrap();
    g.bench_function("cursor_first_of_24", |b| {
        b.iter(|| {
            let mut cur = wide.cursor(&opts).unwrap();
            cur.fetch(1).unwrap()
        })
    });
    g.bench_function("materialize_all_24", |b| {
        b.iter(|| wide.query(&opts).unwrap())
    });

    g.finish();
    report_metrics("prepared_exec", &db);
}

criterion_group!(benches, bench_prepared_exec);
criterion_main!(benches);
