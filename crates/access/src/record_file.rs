//! Physical records in slotted pages.
//!
//! "To manage redundancy in the access system, physical records are
//! introduced as byte strings of variable length. They are stored
//! consecutively in 'containers' offered by the storage system."
//! (Section 3.2.)
//!
//! A [`RecordFile`] owns one segment and lays records out in slotted
//! pages. Record identity is a stable [`RecordPtr`] (page, slot): slots
//! survive compaction; growth beyond the page is reported so the caller
//! (the atom store) can relocate the record and fix its address-table
//! entries.
//!
//! In-page layout (within the page payload area):
//! ```text
//! 0..2   slot count n
//! 2..4   heap offset (start of free space)
//! 4..    slot table: n entries of (offset u16, len u16); offset == 0xFFFF
//!        marks a free slot; len == 0 with a valid offset is an empty
//!        record
//! heap grows upward from the end of the slot table
//! ```

use crate::error::{AccessError, AccessResult};
use parking_lot::{rank, Mutex};
use prima_storage::{PageId, PageType, SegmentId, StorageSystem};
use std::sync::Arc;

/// Stable identity of a physical record within one record file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordPtr {
    pub page: u32,
    pub slot: u16,
}

impl std::fmt::Display for RecordPtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}:{}", self.page, self.slot)
    }
}

const FREE_SLOT: u16 = 0xFFFF;
const SLOT_SIZE: usize = 4;
const HDR: usize = 4;

/// A heap of variable-length records over one segment.
pub struct RecordFile {
    storage: Arc<StorageSystem>,
    segment: SegmentId,
    /// Pages of this file in allocation order (physical scan order).
    // lockrank: buffer.0 — page list: buffer-level peer of the shard/frame
    // group. `insert` refreshes the free-space map while holding a frame
    // guard (frame → this), and `clear` frees pages while holding both
    // maps (this → shard); the cycle cannot close because writers into
    // one record file are serialised by the data system's extension
    // locks, and `clear` is only reached through wholesale structure
    // reorganisation holding the structure exclusively.
    pages: Mutex<Vec<u32>>,
    /// Free space per page (same indexing as `pages`), maintained
    /// optimistically for placement decisions.
    // lockrank: buffer.0 — free-space map; see `pages`.
    free_space: Mutex<Vec<usize>>,
    payload_cap: usize,
}

impl RecordFile {
    /// Creates a record file over a fresh segment with the given page
    /// size.
    pub fn create(
        storage: Arc<StorageSystem>,
        page_size: prima_storage::PageSize,
    ) -> AccessResult<Self> {
        Self::create_with(storage, page_size, true)
    }

    /// Creates a record file, choosing whether its segment is WAL-logged.
    /// Transient structures pass `logged = false` (they are regenerated
    /// after restart, not recovered).
    pub fn create_with(
        storage: Arc<StorageSystem>,
        page_size: prima_storage::PageSize,
        logged: bool,
    ) -> AccessResult<Self> {
        let segment = storage.create_segment_with(page_size, logged)?;
        let payload_cap = page_size.payload();
        Ok(RecordFile {
            storage,
            segment,
            pages: Mutex::new_ranked(Vec::new(), rank::BUFFER),
            free_space: Mutex::new_ranked(Vec::new(), rank::BUFFER),
            payload_cap,
        })
    }

    /// Re-attaches to an existing segment after restart: every allocated
    /// page of `segment` whose header marks it a data page re-enters the
    /// file, in page-number order — which *is* allocation order, because
    /// a record file allocates from its private segment and never frees
    /// individual pages. Free space is recomputed from the slotted-page
    /// headers.
    pub fn attach(storage: Arc<StorageSystem>, segment: SegmentId) -> AccessResult<Self> {
        let (page_size, extent) =
            storage.with_segment(segment, |s| (s.page_size, s.extent()))?;
        let file = RecordFile {
            storage: Arc::clone(&storage),
            segment,
            pages: Mutex::new_ranked(Vec::new(), rank::BUFFER),
            free_space: Mutex::new_ranked(Vec::new(), rank::BUFFER),
            payload_cap: page_size.payload(),
        };
        let mut pages = Vec::new();
        let mut free = Vec::new();
        for page_no in 0..extent {
            let g = storage.fix(PageId::new(segment, page_no))?;
            if g.page_type() != PageType::Data {
                continue;
            }
            free.push(page_free_space(g.payload_area()));
            pages.push(page_no);
        }
        *file.pages.lock() = pages;
        *file.free_space.lock() = free;
        Ok(file)
    }

    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    /// Largest record this file can store.
    pub fn max_record_len(&self) -> usize {
        self.payload_cap - HDR - SLOT_SIZE
    }

    /// Number of pages currently in the file.
    pub fn page_count(&self) -> usize {
        self.pages.lock().len()
    }

    /// Page numbers in physical order (for scans).
    pub fn page_numbers(&self) -> Vec<u32> {
        self.pages.lock().clone()
    }

    /// Inserts a record, returning its stable pointer.
    pub fn insert(&self, data: &[u8]) -> AccessResult<RecordPtr> {
        if data.len() > self.max_record_len() {
            return Err(AccessError::RecordTooLarge {
                len: data.len(),
                max: self.max_record_len(),
            });
        }
        // Find a page with room (first fit over the free-space map).
        let need = data.len() + SLOT_SIZE;
        let candidate = {
            let free = self.free_space.lock();
            free.iter().position(|&f| f >= need)
        };
        let (page_no, page_idx) = match candidate {
            Some(idx) => (self.pages.lock()[idx], idx),
            None => {
                let id = self.storage.allocate_page(self.segment)?;
                {
                    let mut g = self.storage.fix_new(id, PageType::Data)?;
                    init_page(g.payload_area_mut());
                    g.set_payload_len(self.payload_cap)?;
                }
                let mut pages = self.pages.lock();
                let mut free = self.free_space.lock();
                pages.push(id.page);
                free.push(self.payload_cap - HDR);
                (id.page, pages.len() - 1)
            }
        };
        let pid = PageId::new(self.segment, page_no);
        let mut g = self.storage.fix_mut(pid)?;
        let slot = {
            let area = g.payload_area_mut();
            match page_insert(area, data) {
                Some(slot) => slot,
                None => {
                    // Free-space map was stale (fragmentation): compact and
                    // retry; if still no room, fall through to a new page.
                    page_compact(area);
                    match page_insert(area, data) {
                        Some(slot) => slot,
                        None => {
                            drop(g);
                            self.free_space.lock()[page_idx] = 0;
                            return self.insert(data);
                        }
                    }
                }
            }
        };
        self.free_space.lock()[page_idx] = page_free_space(g.payload_area());
        Ok(RecordPtr { page: page_no, slot })
    }

    /// Reads a record. A deleted or never-allocated slot reports as a
    /// missing record of this file's segment.
    pub fn read(&self, ptr: RecordPtr) -> AccessResult<Vec<u8>> {
        let g = self.storage.fix(PageId::new(self.segment, ptr.page))?;
        page_read(g.payload_area(), ptr.slot).map(<[u8]>::to_vec).ok_or(AccessError::Storage(
            prima_storage::StorageError::PageNotAllocated {
                segment: self.segment,
                page: ptr.page,
            },
        ))
    }

    /// Updates a record in place; if the new data does not fit in the
    /// page, the record is moved and the *new* pointer returned.
    pub fn update(&self, ptr: RecordPtr, data: &[u8]) -> AccessResult<RecordPtr> {
        if data.len() > self.max_record_len() {
            return Err(AccessError::RecordTooLarge {
                len: data.len(),
                max: self.max_record_len(),
            });
        }
        let pid = PageId::new(self.segment, ptr.page);
        let moved = {
            let mut g = self.storage.fix_mut(pid)?;
            let area = g.payload_area_mut();
            if page_update(area, ptr.slot, data) {
                None
            } else {
                page_delete(area, ptr.slot);
                Some(())
            }
        };
        self.refresh_free_space(ptr.page)?;
        match moved {
            None => Ok(ptr),
            Some(()) => self.insert(data),
        }
    }

    /// Deletes a record; its slot may be reused.
    pub fn delete(&self, ptr: RecordPtr) -> AccessResult<()> {
        let pid = PageId::new(self.segment, ptr.page);
        {
            let mut g = self.storage.fix_mut(pid)?;
            page_delete(g.payload_area_mut(), ptr.slot);
        }
        self.refresh_free_space(ptr.page)?;
        Ok(())
    }

    /// Visits all records in physical order: `(ptr, bytes)`.
    pub fn for_each(&self, mut f: impl FnMut(RecordPtr, &[u8]) -> AccessResult<()>) -> AccessResult<()> {
        let pages = self.pages.lock().clone();
        for page_no in pages {
            let g = self.storage.fix(PageId::new(self.segment, page_no))?;
            let area = g.payload_area();
            for slot in 0..page_slot_count(area) {
                if let Some(bytes) = page_read(area, slot) {
                    f(RecordPtr { page: page_no, slot }, bytes)?;
                }
            }
        }
        Ok(())
    }

    /// Reads several slots of one page under a **single** page fix — the
    /// storage-level primitive of the batched atom-read path. Invokes
    /// `f(slot_position, record_bytes)` for every requested slot while the
    /// page is fixed once, letting the caller decode in place without an
    /// intermediate byte-vector per record. A deleted or never-allocated
    /// slot yields `None` (the caller decides whether that is an error).
    pub fn read_batch_on_page_with(
        &self,
        page_no: u32,
        slots: &[u16],
        mut f: impl FnMut(usize, Option<&[u8]>) -> AccessResult<()>,
    ) -> AccessResult<()> {
        let g = self.storage.fix(PageId::new(self.segment, page_no))?;
        let area = g.payload_area();
        for (i, &slot) in slots.iter().enumerate() {
            f(i, page_read(area, slot))?;
        }
        Ok(())
    }

    /// Reads all records of one page (scan granularity): `(slot, bytes)`.
    pub fn read_page_records(&self, page_no: u32) -> AccessResult<Vec<(u16, Vec<u8>)>> {
        let g = self.storage.fix(PageId::new(self.segment, page_no))?;
        let area = g.payload_area();
        let mut out = Vec::new();
        for slot in 0..page_slot_count(area) {
            if let Some(bytes) = page_read(area, slot) {
                out.push((slot, bytes.to_vec()));
            }
        }
        Ok(out)
    }

    /// Number of live records (full scan; for stats and tests).
    pub fn record_count(&self) -> AccessResult<usize> {
        let mut n = 0;
        self.for_each(|_, _| {
            n += 1;
            Ok(())
        })?;
        Ok(n)
    }

    /// Frees every page and resets the file to empty (used by structures
    /// that reorganise wholesale, e.g. the grid file's rebuild).
    pub fn clear(&self) -> AccessResult<()> {
        let mut pages = self.pages.lock();
        let mut free = self.free_space.lock();
        for &p in pages.iter() {
            self.storage.free_page(PageId::new(self.segment, p))?;
        }
        pages.clear();
        free.clear();
        Ok(())
    }

    fn refresh_free_space(&self, page_no: u32) -> AccessResult<()> {
        let idx = { self.pages.lock().iter().position(|&p| p == page_no) };
        if let Some(idx) = idx {
            let g = self.storage.fix(PageId::new(self.segment, page_no))?;
            self.free_space.lock()[idx] = page_free_space(g.payload_area());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// In-page operations (pure functions over the payload area)
// ---------------------------------------------------------------------------

fn init_page(area: &mut [u8]) {
    area[0..2].copy_from_slice(&0u16.to_le_bytes());
    let heap_off = area.len() as u16;
    area[2..4].copy_from_slice(&heap_off.to_le_bytes());
}

fn page_slot_count(area: &[u8]) -> u16 {
    u16::from_le_bytes([area[0], area[1]])
}

fn heap_off(area: &[u8]) -> u16 {
    u16::from_le_bytes([area[2], area[3]])
}

fn slot_entry(area: &[u8], slot: u16) -> (u16, u16) {
    let base = HDR + slot as usize * SLOT_SIZE;
    (
        u16::from_le_bytes([area[base], area[base + 1]]),
        u16::from_le_bytes([area[base + 2], area[base + 3]]),
    )
}

fn set_slot_entry(area: &mut [u8], slot: u16, off: u16, len: u16) {
    let base = HDR + slot as usize * SLOT_SIZE;
    area[base..base + 2].copy_from_slice(&off.to_le_bytes());
    area[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
}

/// Contiguous free space between slot table end and heap start.
fn page_free_space(area: &[u8]) -> usize {
    let n = page_slot_count(area) as usize;
    let table_end = HDR + n * SLOT_SIZE;
    let heap = heap_off(area) as usize;
    heap.saturating_sub(table_end)
}

/// Inserts into the page; returns the slot or None when out of room
/// (caller may compact and retry).
fn page_insert(area: &mut [u8], data: &[u8]) -> Option<u16> {
    let n = page_slot_count(area);
    // Prefer a free slot (no table growth).
    let free_slot = (0..n).find(|&s| slot_entry(area, s).0 == FREE_SLOT);
    let need_table = if free_slot.is_some() { 0 } else { SLOT_SIZE };
    if page_free_space(area) < data.len() + need_table {
        return None;
    }
    let new_heap = heap_off(area) as usize - data.len();
    area[new_heap..new_heap + data.len()].copy_from_slice(data);
    area[2..4].copy_from_slice(&(new_heap as u16).to_le_bytes());
    let slot = match free_slot {
        Some(s) => s,
        None => {
            area[0..2].copy_from_slice(&(n + 1).to_le_bytes());
            n
        }
    };
    set_slot_entry(area, slot, new_heap as u16, data.len() as u16);
    Some(slot)
}

fn page_read(area: &[u8], slot: u16) -> Option<&[u8]> {
    if slot >= page_slot_count(area) {
        return None;
    }
    let (off, len) = slot_entry(area, slot);
    if off == FREE_SLOT {
        return None;
    }
    Some(&area[off as usize..off as usize + len as usize])
}

/// In-place update; true on success, false if the page lacks room.
fn page_update(area: &mut [u8], slot: u16, data: &[u8]) -> bool {
    if slot >= page_slot_count(area) {
        return false;
    }
    let (off, len) = slot_entry(area, slot);
    if off == FREE_SLOT {
        return false;
    }
    if data.len() <= len as usize {
        // Shrink/equal: overwrite in place (tail of old record becomes
        // internal fragmentation until compaction).
        let off = off as usize;
        area[off..off + data.len()].copy_from_slice(data);
        set_slot_entry(area, slot, off as u16, data.len() as u16);
        return true;
    }
    // Grow: try to place a fresh copy in free space, keeping the slot.
    if page_free_space(area) >= data.len() {
        let new_heap = heap_off(area) as usize - data.len();
        area[new_heap..new_heap + data.len()].copy_from_slice(data);
        area[2..4].copy_from_slice(&(new_heap as u16).to_le_bytes());
        set_slot_entry(area, slot, new_heap as u16, data.len() as u16);
        return true;
    }
    // Compact once, then retry the free-space placement.
    page_compact(area);
    if page_free_space(area) >= data.len() {
        let new_heap = heap_off(area) as usize - data.len();
        area[new_heap..new_heap + data.len()].copy_from_slice(data);
        area[2..4].copy_from_slice(&(new_heap as u16).to_le_bytes());
        set_slot_entry(area, slot, new_heap as u16, data.len() as u16);
        return true;
    }
    false
}

fn page_delete(area: &mut [u8], slot: u16) {
    if slot < page_slot_count(area) {
        set_slot_entry(area, slot, FREE_SLOT, 0);
    }
}

/// Rewrites all live records tightly at the end of the page, preserving
/// slot numbers.
fn page_compact(area: &mut [u8]) {
    let n = page_slot_count(area);
    let mut records: Vec<(u16, Vec<u8>)> = Vec::new();
    for s in 0..n {
        if let Some(bytes) = page_read(area, s) {
            records.push((s, bytes.to_vec()));
        }
    }
    let mut heap = area.len();
    for (s, bytes) in &records {
        heap -= bytes.len();
        area[heap..heap + bytes.len()].copy_from_slice(bytes);
        set_slot_entry(area, *s, heap as u16, bytes.len() as u16);
    }
    area[2..4].copy_from_slice(&(heap as u16).to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_storage::PageSize;

    fn file() -> RecordFile {
        let storage = Arc::new(StorageSystem::in_memory(1 << 20));
        RecordFile::create(storage, PageSize::Half).unwrap()
    }

    #[test]
    fn insert_read_round_trip() {
        let f = file();
        let p = f.insert(b"hello atoms").unwrap();
        assert_eq!(f.read(p).unwrap(), b"hello atoms");
    }

    #[test]
    fn many_records_span_pages() {
        let f = file();
        let mut ptrs = Vec::new();
        for i in 0..200 {
            let data = format!("record number {i:04} with some padding payload");
            ptrs.push((f.insert(data.as_bytes()).unwrap(), data));
        }
        assert!(f.page_count() > 1, "200 records must not fit one 1/2K page");
        for (p, data) in &ptrs {
            assert_eq!(f.read(*p).unwrap(), data.as_bytes());
        }
        assert_eq!(f.record_count().unwrap(), 200);
    }

    #[test]
    fn update_in_place_and_grow() {
        let f = file();
        let p = f.insert(b"short").unwrap();
        let p2 = f.update(p, b"tiny").unwrap();
        assert_eq!(p, p2, "shrink stays in place");
        assert_eq!(f.read(p).unwrap(), b"tiny");
        let p3 = f.update(p, b"a noticeably longer record body").unwrap();
        assert_eq!(f.read(p3).unwrap(), b"a noticeably longer record body");
    }

    #[test]
    fn update_that_overflows_page_moves_record() {
        let f = file();
        // Fill a page almost completely.
        let big = vec![b'x'; 200];
        let a = f.insert(&big).unwrap();
        let b = f.insert(&big).unwrap();
        let _ = b;
        // Growing `a` beyond the remaining space forces a move.
        let huge = vec![b'y'; 400];
        let a2 = f.update(a, &huge).unwrap();
        assert_eq!(f.read(a2).unwrap(), huge);
        if a2 != a {
            // old slot must be gone
            assert!(f.read(a).is_err() || f.read(a).unwrap() != huge);
        }
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let f = file();
        let a = f.insert(b"one").unwrap();
        let _b = f.insert(b"two").unwrap();
        f.delete(a).unwrap();
        assert!(f.read(a).is_err());
        let c = f.insert(b"three").unwrap();
        // Reuses the freed slot on the same page.
        assert_eq!(c.page, a.page);
        assert_eq!(c.slot, a.slot);
        assert_eq!(f.record_count().unwrap(), 2);
    }

    #[test]
    fn oversized_record_rejected() {
        let f = file();
        let data = vec![0u8; 1000];
        assert!(matches!(f.insert(&data), Err(AccessError::RecordTooLarge { .. })));
    }

    #[test]
    fn for_each_visits_in_physical_order() {
        let f = file();
        for i in 0..50 {
            f.insert(format!("r{i:03}").as_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        f.for_each(|ptr, bytes| {
            seen.push((ptr, bytes.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 50);
        // Physical order within a page follows slot order, pages in
        // allocation order.
        let pages: Vec<u32> = seen.iter().map(|(p, _)| p.page).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        assert_eq!(pages, sorted);
    }

    #[test]
    fn fragmentation_is_compacted() {
        let f = file();
        // Alternate insert/delete to fragment, then insert a record that
        // only fits after compaction.
        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        for i in 0..8 {
            let p = f.insert(&[i as u8; 50]).unwrap();
            if i % 2 == 0 {
                dropped.push(p);
            } else {
                kept.push((p, vec![i as u8; 50]));
            }
        }
        for p in dropped {
            f.delete(p).unwrap();
        }
        // 4*50 freed but scattered; a 150-byte record needs compaction.
        let big = vec![0xaa; 150];
        let p = f.insert(&big).unwrap();
        assert_eq!(f.read(p).unwrap(), big);
        for (p, data) in kept {
            assert_eq!(f.read(p).unwrap(), data);
        }
    }
}
