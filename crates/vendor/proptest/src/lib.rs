//! Minimal stand-in for the `proptest` crate. The build environment has no
//! crates.io access; the kernel's property tests use a narrow strategy
//! surface, reproduced here:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`
//! * `any::<T>()` for primitives and `prop::sample::Index`
//! * integer-range strategies, tuple strategies, `Just`
//! * `prop_oneof!` (weighted and unweighted), `prop_map`, `prop_recursive`
//! * `prop::collection::vec(strategy, size_range)`
//! * simple `"[class]{m,n}"` regex string strategies
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Generation is deterministic: the RNG is seeded from the test's module
//! path + case number, so failures reproduce across runs. There is **no
//! shrinking** — a failing case reports its inputs via the panic message of
//! the underlying assertion.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator seeded per test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test identity and case index (stable across runs).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of one type. Unlike real proptest there is no
/// value tree / shrinking; `generate` draws one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies, statically bounded to `depth` expansions: each
    /// level draws either a base (leaf) value or one level of the expansion
    /// `recurse` builds from the previous level's strategy.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let expanded = recurse(current).boxed();
            current = Union::new(vec![(1, base.clone()), (2, expanded)]).boxed();
        }
        current
    }
}

trait StrategyObj {
    type Value;
    fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.next_u64() % self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        self.arms.last().expect("non-empty").1.generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Strategy of one primitive type's full domain (see [`Arbitrary`]).
pub struct AnyOf<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for AnyOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyOf<T> {
    AnyOf { _marker: std::marker::PhantomData }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform over bit patterns, excluding NaN and infinities (matching
    /// proptest's default finite `f64` domain).
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        for _ in 0..64 {
            let f = f64::from_bits(rng.next_u64());
            if f.is_finite() {
                return f;
            }
        }
        0.0
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        for _ in 0..64 {
            let f = f32::from_bits(rng.next_u64() as u32);
            if f.is_finite() {
                return f;
            }
        }
        0.0
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// `&'static str` acts as a pattern strategy for the `"[class]{m,n}"`
/// subset (a single character class with a repetition count); any other
/// pattern generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below(hi - lo + 1);
                (0..len).map(|_| chars[rng.below(chars.len())]).collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[chars]{m}` / `[chars]{m,n}` / `[chars]` into (alphabet, m, n).
fn parse_class_pattern(p: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = p.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a..=b {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, lo, hi))
}

// ---------------------------------------------------------------------------
// Collections and sampling
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index drawn independently of the collection it later addresses.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Maps the draw onto `[0, size)`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            self.0 % size
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-harness macro: each embedded `#[test] fn` runs `cases` times
/// with freshly generated inputs; generation is deterministic per
/// (test name, case index).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::Strategy::generate(&$strat, &mut proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::TestRng::for_case("t", 0);
        for _ in 0..200 {
            let v = (0usize..5).generate(&mut rng);
            assert!(v < 5);
            let (a, b) = ((-10i64..10), (0u16..3)).generate(&mut rng);
            assert!((-10..10).contains(&a) && b < 3);
        }
    }

    #[test]
    fn string_patterns() {
        let mut rng = crate::TestRng::for_case("s", 0);
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z0-9 _-]{0,24}".generate(&mut rng);
            assert!(t.len() <= 24);
        }
    }

    #[test]
    fn oneof_weights_and_recursion() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        let strat = any::<i64>().prop_map(T::Leaf).prop_recursive(3, 8, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = crate::TestRng::for_case("r", 1);
        let mut nodes = 0;
        for _ in 0..200 {
            if matches!(strat.generate(&mut rng), T::Node(_)) {
                nodes += 1;
            }
        }
        assert!(nodes > 0, "recursion must expand sometimes");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 4);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in any::<u8>()) {
            prop_assert_eq!(x as u64 & 0xff, x as u64);
        }
    }
}
