//! Session-centric kernel API: sessions, prepared statements, streaming
//! molecule cursors.
//!
//! PRIMA's MAD interface is set-oriented and transactional: molecule sets
//! are "derived dynamically" per query and delivered to the application
//! piecewise, not as one materialised blob (Sections 3–4). This module is
//! that interface shape for the kernel facade:
//!
//! * [`Session`] — owns a transaction context. DML issued through
//!   [`Session::execute`] is undo-logged and lock-protected; explicit
//!   [`Session::commit`] / [`Session::rollback`] end the unit of work
//!   (dropping the session rolls uncommitted work back).
//! * [`Prepared`] — parse / validate / plan **once**, then
//!   [`Prepared::bind`] + [`Prepared::execute`] many times. MQL carries
//!   `?` (positional) and `:name` (named) placeholders; binding is
//!   type-checked against the attribute each parameter is compared with
//!   or assigned to.
//! * [`MoleculeCursor`] — a pull-based iterator over result molecules.
//!   Root atoms are located up front (they are the cheap part); component
//!   assembly runs lazily per fetched chunk through the level-batched
//!   read path, so a large result never materialises in full.
//!
//! [`QueryOptions`] collapses the historical `query` / `query_traced` /
//! `query_with_assembly` / `query_parallel` facade variants into one
//! execution descriptor accepted by both [`Session::query`] and
//! [`Prepared`].
//!
//! ## Isolation
//!
//! Reads take one of two paths, selected by whether the session has a
//! transaction open:
//!
//! * **Snapshot reads (no transaction open).** A read statement issued
//!   outside any transaction — the auto-commit case, and the hot path of
//!   a read-mostly workload — does not open one. It pins a
//!   [`crate::txn::Snapshot`] of the version store instead and runs with
//!   a snapshot-mode [`crate::txn::ReadGuard`]: **no lock is acquired**,
//!   concurrent writers are never waited on, and every atom read is
//!   resolved to the version committed as of the snapshot. Such a read
//!   cannot conflict, cannot deadlock, and leaves `LockStats` untouched.
//! * **Locking reads (transaction open).** A query — one-shot, prepared
//!   or cursor — issued inside a transaction (opened by
//!   [`Session::begin`] or lazily by an earlier DML) is bracketed by the
//!   same Moss lock table as manipulation (see [`crate::txn`]): it takes
//!   a `Shared` lock on the root type's extension before root access and
//!   a `Shared` lock on every atom that flows into a result, all held to
//!   the top-level commit/rollback (strict two-phase). Writers hold
//!   their atoms `Exclusive` and announce `IntentExclusive` on the
//!   written types' extensions, so a concurrent session's uncommitted
//!   INSERT/MODIFY/DELETE is **never observable**: the reader waits in
//!   the lock table's bounded FIFO queue and, if the wait expires (or
//!   waiting is disabled), sees a retryable error. A session still reads
//!   its own uncommitted writes (which is why transactions keep the
//!   locking path — a snapshot cannot see the session's own dirty
//!   atoms), and nested subtransactions tolerate their ancestors' locks
//!   (Moss's rule).
//!
//! ## Retry
//!
//! Statements that fail with a *retryable* error
//! ([`PrimaError::is_retryable`]: lock conflict, bounded-wait timeout,
//! deadlock victim) are transparently re-run under the session's
//! [`RetryPolicy`] — **only on auto-commit DML paths**, i.e. when the
//! failing statement itself (lazily) opened the session's transaction.
//! There is nothing else in such a transaction, so rolling it back via
//! the undo machinery and re-running the statement after an exponential
//! backoff is invisible to the caller. A statement issued inside an
//! explicit multi-statement transaction propagates the error instead:
//! the kernel cannot know whether earlier statements' results still
//! justify the retry, so that decision belongs to the application.
//! Snapshot reads never consult the policy at all — the lock-free path
//! has no retryable failure mode, so the hot read path pays no retry
//! bookkeeping (not even the jitter PRNG draw). Cursor opens and fetches
//! never retry either (a stream's already-delivered prefix cannot be
//! rolled back transparently).

use crate::datasys::exec::{find_roots, node_infos, process_root_traced, AssemblyCtx};
use crate::datasys::{
    self, AssemblyMode, DmlResult, ExecutionTrace, Molecule, MoleculeSet, NodeInfo,
};
use crate::datasys::plan::ResolvedQuery;
use crate::datasys::validate::resolve_ref;
use crate::error::{PrimaError, PrimaResult};
use crate::obs::{self, Obs, Probe, StatementKind, StatementProfile};
use crate::parallel;
use crate::txn::{ReadGuard, Snapshot, Transaction, TxnId, TxnManager};
use parking_lot::{rank, Mutex};
use prima_access::cluster::AtomClusterType;
use prima_access::{AccessSystem, Atom};
use prima_mad::mql::{
    parse_statement_params, CompRef, Operand, Predicate, Query, SelectList, SetExpr, Statement,
    ValueExpr,
};
use prima_mad::value::{AtomId, Value};
use prima_mad::{AttrType, Schema};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Options & outcomes
// ---------------------------------------------------------------------

/// Execution descriptor shared by every query entry point.
///
/// Replaces the former facade variants: `query` ⇒ defaults,
/// `query_traced` ⇒ `trace: true`, `query_with_assembly` ⇒ `assembly`,
/// `query_parallel` ⇒ `threads: n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOptions {
    /// Vertical-assembly strategy ([`AssemblyMode::Batched`] by default;
    /// the per-atom baseline exists for benchmarks and equivalence tests).
    pub assembly: AssemblyMode,
    /// Worker threads for semantic parallelism (one DU per molecule).
    /// **Must be ≥ 1**: `1` means serial execution, `n > 1` decomposes
    /// molecule construction onto `n` workers. `0` is rejected by
    /// [`QueryOptions::validate`] — it is not "auto" and is never clamped
    /// silently.
    pub threads: usize,
    /// Return the [`ExecutionTrace`] (root access choice, cluster use,
    /// counts) alongside the molecule set.
    pub trace: bool,
    /// Per-statement retry override; `None` uses the session's policy
    /// ([`Session::retry_policy`]). Only consulted on auto-commit paths —
    /// see the module docs.
    pub retry: Option<RetryPolicy>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            assembly: AssemblyMode::Batched,
            threads: 1,
            trace: false,
            retry: None,
        }
    }
}

impl QueryOptions {
    /// Serial, batched, untraced — what `Prima::query` always did.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the vertical-assembly strategy.
    pub fn assembly(mut self, mode: AssemblyMode) -> Self {
        self.assembly = mode;
        self
    }

    /// Sets the degree of semantic parallelism (`n ≥ 1`).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Requests the execution trace.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Overrides the session's [`RetryPolicy`] for this statement.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Disables transparent retry for this statement (first retryable
    /// error propagates).
    pub fn no_retry(mut self) -> Self {
        self.retry = Some(RetryPolicy::off());
        self
    }

    /// Boundary validation: `threads == 0` is an error, not a silent
    /// clamp (historically `query_parallel(mql, 0)` degraded to serial
    /// deep inside the worker pool). Likewise, the per-atom assembly
    /// baseline exists only on the serial path — combining it with
    /// `threads > 1` is rejected rather than silently running batched.
    pub fn validate(&self) -> PrimaResult<()> {
        if self.threads == 0 {
            return Err(PrimaError::BadStatement(
                "QueryOptions.threads must be >= 1 (1 = serial; 0 is not 'auto')".into(),
            ));
        }
        if self.threads > 1 && self.assembly == AssemblyMode::PerAtom {
            return Err(PrimaError::BadStatement(
                "AssemblyMode::PerAtom is a serial baseline; parallel DUs always batch"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Transparent-retry policy for statements killed by transient contention
/// ([`PrimaError::is_retryable`]): the statement's (auto-commit)
/// transaction is rolled back through the undo machinery, the session
/// sleeps `backoff · 2^attempt` (optionally jittered up to +50% so
/// colliding sessions decorrelate), and the statement re-runs — up to
/// `max_attempts` total executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executions (first try included); at least 1. `1` disables
    /// retrying.
    pub max_attempts: u32,
    /// Base backoff, doubled per retry.
    pub backoff: std::time::Duration,
    /// Adds a random fraction (0–50%) of the delay on top, so sessions
    /// that deadlocked together do not collide again in lockstep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 5, backoff: std::time::Duration::from_millis(1), jitter: true }
    }
}

impl RetryPolicy {
    /// No retrying: the first retryable error propagates to the caller.
    pub fn off() -> Self {
        RetryPolicy { max_attempts: 1, backoff: std::time::Duration::ZERO, jitter: false }
    }

    /// Backoff before retry number `attempt` (0-based: the delay after
    /// the first failure is `delay(0)`).
    pub fn delay(&self, attempt: u32) -> std::time::Duration {
        let base = self.backoff.saturating_mul(1u32 << attempt.min(10));
        if !self.jitter || base.is_zero() {
            return base;
        }
        // splitmix64 over a process-global counter: cheap, dependency-free
        // decorrelation; cryptographic quality is irrelevant here.
        static SEED: AtomicU64 = AtomicU64::new(0x243F_6A88_85A3_08D3);
        let mut x = SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        base + base.mul_f64((x % 512) as f64 / 1024.0)
    }
}

/// Result of a query execution: the molecule set plus, when requested via
/// [`QueryOptions::trace`], the execution trace.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub set: MoleculeSet,
    pub trace: Option<ExecutionTrace>,
}

/// Result of executing a prepared statement (SELECT or DML).
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    Molecules(QueryResult),
    Dml(DmlResult),
}

impl StatementOutcome {
    /// The molecule set of a SELECT outcome.
    pub fn molecules(self) -> PrimaResult<QueryResult> {
        match self {
            StatementOutcome::Molecules(r) => Ok(r),
            StatementOutcome::Dml(d) => Err(PrimaError::BadStatement(format!(
                "statement produced a DML result ({d:?}), not molecules"
            ))),
        }
    }

    /// The DML result of a manipulation outcome.
    pub fn dml(self) -> PrimaResult<DmlResult> {
        match self {
            StatementOutcome::Dml(d) => Ok(d),
            StatementOutcome::Molecules(_) => Err(PrimaError::BadStatement(
                "statement produced molecules, not a DML result".into(),
            )),
        }
    }
}

// ---------------------------------------------------------------------
// API statistics (plan-cache accounting)
// ---------------------------------------------------------------------

/// Counters proving the prepare-once/execute-many contract: a prepared
/// statement increments `statements_parsed` and `plans_built` once at
/// [`Session::prepare`] time and `plan_reuses` on every subsequent
/// SELECT execution. (Prepared DML skips re-parsing but re-validates
/// its qualification sub-query per execution, so it counts towards
/// neither; internal sub-query validations inside DELETE/MODIFY and
/// `CONNECT`/`DISCONNECT` are likewise not facade-level plans and are
/// not counted.)
#[derive(Debug, Default)]
pub struct ApiStats {
    /// MQL texts run through the lexer+parser at the facade.
    pub statements_parsed: AtomicU64,
    /// Facade-level query validations / plan constructions
    /// ([`datasys::validate`]).
    pub plans_built: AtomicU64,
    /// SELECT executions that reused an already-built plan (prepared
    /// re-runs, including cursors).
    pub plan_reuses: AtomicU64,
    /// Statements actually executed through a session — SELECT (one-shot
    /// and prepared, snapshot or locking path) and DML alike. Commits
    /// and cursor fetches are not statements and count elsewhere.
    pub statements_executed: AtomicU64,
    /// `MoleculeCursor::fetch` / `fetch_all` / iterator-step calls.
    pub cursor_fetches: AtomicU64,
}

/// Point-in-time copy of [`ApiStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApiStatsSnapshot {
    pub statements_parsed: u64,
    pub plans_built: u64,
    pub plan_reuses: u64,
    pub statements_executed: u64,
    pub cursor_fetches: u64,
}

impl ApiStats {
    pub fn snapshot(&self) -> ApiStatsSnapshot {
        ApiStatsSnapshot {
            statements_parsed: self.statements_parsed.load(Ordering::Relaxed),
            plans_built: self.plans_built.load(Ordering::Relaxed),
            plan_reuses: self.plan_reuses.load(Ordering::Relaxed),
            statements_executed: self.statements_executed.load(Ordering::Relaxed),
            cursor_fetches: self.cursor_fetches.load(Ordering::Relaxed),
        }
    }

    fn parsed(&self) {
        self.statements_parsed.fetch_add(1, Ordering::Relaxed);
    }

    fn planned(&self) {
        self.plans_built.fetch_add(1, Ordering::Relaxed);
    }

    fn reused(&self) {
        self.plan_reuses.fetch_add(1, Ordering::Relaxed);
    }

    fn executed(&self) {
        self.statements_executed.fetch_add(1, Ordering::Relaxed);
    }

    fn cursor_fetched(&self) {
        self.cursor_fetches.fetch_add(1, Ordering::Relaxed);
    }
}

impl ApiStatsSnapshot {
    /// Counter deltas since `earlier`; saturates at zero.
    pub fn since(&self, earlier: &ApiStatsSnapshot) -> ApiStatsSnapshot {
        ApiStatsSnapshot {
            statements_parsed: self.statements_parsed.saturating_sub(earlier.statements_parsed),
            plans_built: self.plans_built.saturating_sub(earlier.plans_built),
            plan_reuses: self.plan_reuses.saturating_sub(earlier.plan_reuses),
            statements_executed: self
                .statements_executed
                .saturating_sub(earlier.statements_executed),
            cursor_fetches: self.cursor_fetches.saturating_sub(earlier.cursor_fetches),
        }
    }
}

impl prima_storage::StatsSnapshot for ApiStatsSnapshot {
    const FAMILY: &'static str = "api";

    fn delta(&self, earlier: &Self) -> Self {
        self.since(earlier)
    }

    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("statements_parsed", self.statements_parsed),
            ("plans_built", self.plans_built),
            ("plan_reuses", self.plan_reuses),
            ("statements_executed", self.statements_executed),
            ("cursor_fetches", self.cursor_fetches),
        ]
    }
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// One application conversation with the kernel: a transaction context
/// plus the prepare/execute machinery. Obtained from `Prima::session()`.
///
/// The transaction begins with [`Session::begin`] or lazily with the
/// first DML statement; `SELECT`s do not open one — outside a
/// transaction they run on the lock-free snapshot path (see the module
/// docs). [`Session::commit`] / [`Session::rollback`] end the current
/// transaction; the next DML begins a fresh one, so a session chains
/// units of work like a classic server connection. Dropping the session
/// aborts whatever was not committed.
pub struct Session {
    access: Arc<AccessSystem>,
    txn_mgr: Arc<TxnManager>,
    stats: Arc<ApiStats>,
    obs: Arc<Obs>,
    // lockrank: api.0 — the session's explicit-transaction slot; the
    // outermost lock a statement can hold.
    txn: Mutex<Option<Transaction>>,
    retry: RetryPolicy,
    /// Per-session profiler switch ([`Session::set_profiling`]); a
    /// kernel-wide slow-statement threshold overrides it to on.
    profiling: AtomicBool,
    // lockrank: api.1
    last_profile: Mutex<Option<StatementProfile>>,
}

impl Session {
    pub(crate) fn new(
        access: Arc<AccessSystem>,
        txn_mgr: Arc<TxnManager>,
        stats: Arc<ApiStats>,
        obs: Arc<Obs>,
    ) -> Session {
        Session {
            access,
            txn_mgr,
            stats,
            obs,
            txn: Mutex::new_ranked(None, rank::API),
            retry: RetryPolicy::default(),
            profiling: AtomicBool::new(false),
            last_profile: Mutex::new_ranked(None, rank::API + 1),
        }
    }

    /// Turns the statement profiler on or off for this session. While
    /// on, every statement leaves a [`StatementProfile`] retrievable
    /// via [`Session::last_profile`]. Orthogonal to the kernel-wide
    /// slow-statement threshold, which force-profiles every session.
    pub fn set_profiling(&self, on: bool) {
        self.profiling.store(on, Ordering::Relaxed);
    }

    /// Whether statements on this session are currently profiled.
    pub fn profiling_enabled(&self) -> bool {
        self.profiling.load(Ordering::Relaxed) || self.obs.profile_all()
    }

    /// The profile of the most recent profiled statement (including
    /// commits and cursor fetches), if any.
    pub fn last_profile(&self) -> Option<StatementProfile> {
        self.last_profile.lock().clone()
    }

    /// Brackets one statement: always records the latency histogram
    /// (and, for real statements, `statements_executed`); when
    /// profiling is on, additionally installs the span recorder and
    /// captures the per-layer counter deltas into a
    /// [`StatementProfile`].
    fn statement_scope<R>(
        &self,
        kind: StatementKind,
        text: &str,
        f: impl FnOnce() -> PrimaResult<R>,
    ) -> PrimaResult<R> {
        let count_executed = kind != StatementKind::Commit;
        if !self.profiling_enabled() {
            let started = Instant::now();
            let out = f();
            self.obs.record_statement(kind, started.elapsed());
            if count_executed {
                self.stats.executed();
            }
            return out;
        }
        let before = self.obs.layer_counters();
        let probe = Probe::start();
        let started = Instant::now();
        let out = f();
        let total = started.elapsed();
        let root = probe.finish(total);
        let counters = self.obs.layer_counters().delta_since(&before);
        self.obs.record_statement(kind, total);
        if count_executed {
            self.stats.executed();
        }
        let profile = StatementProfile { kind, statement: text.to_string(), total, root, counters };
        self.obs.note_profile(&profile);
        *self.last_profile.lock() = Some(profile);
        out
    }

    /// [`Session::statement_scope`] for cursor fetches, split into a
    /// begin/end pair because a fetch mutably borrows the cursor while
    /// the session is only reachable through it. Bumps
    /// `cursor_fetches` instead of the histograms (a fetch is a slice
    /// of a statement, not a statement), but still produces a profile
    /// when profiling is on.
    fn begin_cursor_scope(&self) -> CursorScope {
        self.stats.cursor_fetched();
        if !self.profiling_enabled() {
            return CursorScope(None);
        }
        let before = self.obs.layer_counters();
        let probe = Probe::start();
        CursorScope(Some((before, probe, Instant::now())))
    }

    fn end_cursor_scope(&self, scope: CursorScope) {
        let Some((before, probe, started)) = scope.0 else {
            return;
        };
        let total = started.elapsed();
        let root = probe.finish(total);
        let counters = self.obs.layer_counters().delta_since(&before);
        let profile = StatementProfile {
            kind: StatementKind::Select,
            statement: "<cursor fetch>".into(),
            total,
            root,
            counters,
        };
        self.obs.note_profile(&profile);
        *self.last_profile.lock() = Some(profile);
    }

    /// The session's transparent-retry policy (default: on, 5 attempts,
    /// 1 ms exponential backoff with jitter).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the session's retry policy ([`RetryPolicy::off`] to
    /// disable transparent retry entirely).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The schema (for application-side introspection).
    pub fn schema(&self) -> &Schema {
        self.access.schema()
    }

    /// Id of the transaction currently underway, if any.
    pub fn txn_id(&self) -> Option<TxnId> {
        self.txn.lock().as_ref().map(super::txn::Transaction::id)
    }

    /// Explicitly opens the session's transaction now (it otherwise
    /// begins lazily with the first DML statement). A no-op when one is
    /// already open.
    ///
    /// The choice matters for reads: outside a transaction they run on
    /// the lock-free snapshot path and observe the committed state as of
    /// the statement; inside one they go through the lock table, wait on
    /// concurrent writers, stay stable to commit/rollback under strict
    /// 2PL, and see the session's own uncommitted writes. Call `begin()`
    /// when a read-then-write unit of work needs the latter.
    pub fn begin(&self) -> PrimaResult<()> {
        let mut guard = self.txn.lock();
        if guard.is_none() {
            *guard = Some(self.txn_mgr.begin(None)?);
        }
        Ok(())
    }

    #[allow(clippy::unwrap_used, clippy::expect_used)]
    fn with_txn<R>(&self, f: impl FnOnce(&Transaction) -> PrimaResult<R>) -> PrimaResult<R> {
        let mut guard = self.txn.lock();
        if guard.is_none() {
            *guard = Some(self.txn_mgr.begin(None)?);
        }
        // lint: allow(error-hygiene, ensure_txn on the preceding line just filled the slot and the session lock is still held)
        f(guard.as_ref().expect("txn just ensured"))
    }

    /// Runs `f` on the lock-free snapshot path when no transaction is
    /// open (the auto-commit read case), or returns `None` when one is
    /// underway — the caller then falls back to the locking read path,
    /// which sees the session's own uncommitted writes. The snapshot is
    /// pinned for exactly the duration of `f`, so version GC resumes the
    /// moment the statement completes.
    fn try_snapshot<R>(
        &self,
        f: impl FnOnce(ReadGuard<'_>) -> PrimaResult<R>,
    ) -> Option<PrimaResult<R>> {
        if self.txn.lock().is_some() {
            return None;
        }
        let snap =
            obs::span(obs::SpanKind::SnapshotPin, || self.txn_mgr.versions().begin_snapshot());
        Some(f(ReadGuard::snapshot(&snap)))
    }

    /// [`Session::with_txn`] plus transparent retry: when the statement
    /// itself opened the transaction (auto-commit — nothing else is in
    /// it) and `f` fails with a retryable contention error, the
    /// transaction is rolled back through the undo machinery and `f`
    /// re-runs after `policy`'s backoff. Inside an explicit transaction
    /// the error propagates untouched; on the final attempt the failed
    /// transaction is left open for the caller to roll back, exactly as
    /// `with_txn` would.
    fn with_txn_retry<R>(
        &self,
        policy: &RetryPolicy,
        f: impl Fn(&Transaction) -> PrimaResult<R>,
    ) -> PrimaResult<R> {
        let mut attempt = 0u32;
        loop {
            let auto_commit = self.txn.lock().is_none();
            match self.with_txn(&f) {
                Err(e)
                    if auto_commit
                        && e.is_retryable()
                        && attempt + 1 < policy.max_attempts.max(1) =>
                {
                    self.rollback()?;
                    std::thread::sleep(policy.delay(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Commits the session's current transaction (no-op when none is
    /// open). The next manipulation statement begins a fresh one.
    pub fn commit(&self) -> PrimaResult<()> {
        let Some(t) = self.txn.lock().take() else {
            return Ok(());
        };
        self.statement_scope(StatementKind::Commit, "COMMIT", || Ok(t.commit()?))
    }

    /// Rolls the current transaction back, undoing every manipulation
    /// issued through this session since the last commit.
    pub fn rollback(&self) -> PrimaResult<()> {
        match self.txn.lock().take() {
            Some(t) => Ok(t.abort()?),
            None => Ok(()),
        }
    }

    // -----------------------------------------------------------------
    // One-shot statements
    // -----------------------------------------------------------------

    /// Parses, plans and runs one `SELECT`, materialising the full
    /// molecule set. Outside a transaction it runs lock-free against a
    /// snapshot of the committed state; inside one it runs under the
    /// session's transaction and the retrieved atoms stay
    /// `Shared`-locked until [`Session::commit`] /
    /// [`Session::rollback`]. Parameterised statements must go through
    /// [`Session::prepare`].
    pub fn query(&self, mql: &str, opts: &QueryOptions) -> PrimaResult<QueryResult> {
        opts.validate()?;
        self.statement_scope(StatementKind::Select, mql, || {
            let resolved = self.plan_select(mql)?;
            if let Some(r) = self.try_snapshot(|g| self.run_plan(&resolved, opts, g)) {
                return r;
            }
            let policy = opts.retry.unwrap_or(self.retry);
            self.with_txn_retry(&policy, |t| self.run_plan(&resolved, opts, t.read_guard()))
        })
    }

    /// Runs a `SELECT` as a streaming [`MoleculeCursor`]: roots are
    /// located now, component assembly happens per
    /// [`MoleculeCursor::fetch`] chunk. Opened outside a transaction the
    /// cursor pins a snapshot for its whole lifetime — fetches are
    /// lock-free and the stream stays stable against concurrent commits.
    /// Opened inside one, roots are `Shared`-locked up front and each
    /// fetch runs under the session's transaction current *at fetch
    /// time* — after a commit/rollback the next fetch reacquires its
    /// locks under the fresh transaction.
    pub fn query_cursor(
        &self,
        mql: &str,
        opts: &QueryOptions,
    ) -> PrimaResult<MoleculeCursor<'_>> {
        opts.validate()?;
        let resolved = self.plan_select(mql)?;
        MoleculeCursor::open(SessionRef::Borrowed(self), &resolved, opts)
    }

    /// [`Session::query_cursor`] consuming the session: the cursor owns
    /// it and keeps its transaction (and therefore its locks) alive for
    /// the cursor's lifetime — dropping the cursor rolls the read
    /// transaction back. Backs `Prima::query_cursor`.
    pub fn into_cursor(
        self,
        mql: &str,
        opts: &QueryOptions,
    ) -> PrimaResult<MoleculeCursor<'static>> {
        opts.validate()?;
        let resolved = self.plan_select(mql)?;
        MoleculeCursor::open(SessionRef::Owned(Box::new(self)), &resolved, opts)
    }

    /// Executes one manipulation statement (`INSERT`/`DELETE`/`MODIFY`)
    /// under the session's transaction.
    pub fn execute(&self, mql: &str) -> PrimaResult<DmlResult> {
        self.stats.parsed();
        let (stmt, slots) = parse_statement_params(mql)?;
        if !slots.is_empty() {
            return Err(PrimaError::UnboundParameter {
                slot: 0,
                detail: "one-shot execute cannot run parameterized statements — prepare it"
                    .into(),
            });
        }
        if matches!(stmt, Statement::Select(_)) {
            return Err(PrimaError::BadStatement("use query() for SELECT".into()));
        }
        // The kind is only known after the parse, so the parse itself
        // stays outside the scope on this one-shot path.
        let kind = dml_kind(&stmt);
        self.statement_scope(kind, mql, || self.run_dml(&stmt, &self.retry))
    }

    /// Prepares a statement: parse + validate + plan now, bind and
    /// execute as often as needed.
    pub fn prepare(&self, mql: &str) -> PrimaResult<Prepared<'_>> {
        Prepared::new(self, mql)
    }

    // -----------------------------------------------------------------
    // Shared execution plumbing (also used by Prepared)
    // -----------------------------------------------------------------

    fn plan_select(&self, mql: &str) -> PrimaResult<ResolvedQuery> {
        self.stats.parsed();
        let (stmt, slots) = obs::span(obs::SpanKind::Parse, || parse_statement_params(mql))?;
        if !slots.is_empty() {
            return Err(PrimaError::UnboundParameter {
                slot: 0,
                detail: "one-shot query cannot run parameterized statements — prepare it"
                    .into(),
            });
        }
        let Statement::Select(q) = stmt else {
            return Err(PrimaError::BadStatement("use execute() for manipulation".into()));
        };
        self.stats.planned();
        obs::span(obs::SpanKind::Plan, || datasys::validate(self.access.schema(), &q))
    }

    fn run_plan(
        &self,
        resolved: &ResolvedQuery,
        opts: &QueryOptions,
        guard: ReadGuard<'_>,
    ) -> PrimaResult<QueryResult> {
        let locks = Some(guard);
        let (set, trace) = if opts.threads > 1 {
            parallel::execute_parallel(&self.access, resolved, opts.threads, locks)?
        } else {
            datasys::execute_with_mode(&self.access, resolved, opts.assembly, locks)?
        };
        Ok(QueryResult { set, trace: opts.trace.then_some(trace) })
    }

    fn run_dml(&self, stmt: &Statement, policy: &RetryPolicy) -> PrimaResult<DmlResult> {
        self.with_txn_retry(policy, |t| {
            obs::span(obs::SpanKind::DmlApply, || {
                datasys::dml::execute_statement_with(&self.access, t, stmt, Some(t.read_guard()))
            })
        })
    }

    // -----------------------------------------------------------------
    // Atom-level interface (application-layer style access, under the
    // session transaction)
    // -----------------------------------------------------------------

    /// Inserts an atom by type name with named attribute values under the
    /// session's transaction (undo-logged, lock-protected; visible to
    /// other sessions after [`Session::commit`]).
    pub fn insert_atom_named(
        &self,
        type_name: &str,
        attrs: &[(&str, Value)],
    ) -> PrimaResult<AtomId> {
        let (t, values) = self.access.resolve_named_values(type_name, attrs)?;
        self.with_txn_retry(&self.retry, |txn| Ok(txn.insert_atom(t, values.clone())?))
    }

    /// Reads one atom: lock-free against a snapshot outside a
    /// transaction, under a `Shared` lock of the session's transaction
    /// inside one.
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn read_atom(&self, id: AtomId) -> PrimaResult<Atom> {
        if let Some(r) = self.try_snapshot(|g| {
            // lint: allow(error-hygiene, the guard was constructed in snapshot mode in this same function)
            let snap = g.as_snapshot().expect("guard built in snapshot mode");
            let base = match self.access.read_atom(id, None) {
                Ok(a) => Some(a),
                Err(prima_access::AccessError::NoSuchAtom(_)) => None,
                Err(e) => return Err(e.into()),
            };
            snap.visible(id, base)
                .ok_or_else(|| prima_access::AccessError::NoSuchAtom(id).into())
        }) {
            return r;
        }
        self.with_txn_retry(&self.retry, |txn| {
            txn.read_guard().lock_atom(id)?;
            Ok(self.access.read_atom(id, None)?)
        })
    }

    /// Modifies named attributes of an atom under the session's
    /// transaction.
    pub fn modify_atom_named(&self, id: AtomId, attrs: &[(&str, Value)]) -> PrimaResult<()> {
        let by_idx = self.access.resolve_named_updates(id, attrs)?;
        self.with_txn_retry(&self.retry, |txn| Ok(txn.modify_atom(id, &by_idx)?))
    }

    /// Deletes an atom (disconnecting it everywhere) under the session's
    /// transaction.
    pub fn delete_atom(&self, id: AtomId) -> PrimaResult<()> {
        self.with_txn_retry(&self.retry, |txn| Ok(txn.delete_atom(id)?))
    }
}

// ---------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------

/// One parameter slot of a prepared statement.
#[derive(Debug, Clone)]
pub struct ParamSlot {
    /// `Some(name)` for `:name`, `None` for positional `?`.
    pub name: Option<String>,
    /// Declared type of the attribute this parameter is compared with or
    /// assigned to, when inferable — bindings are checked against it.
    pub expected: Option<AttrType>,
}

/// A prepared MQL statement: parsed, validated and (for `SELECT`s)
/// planned once at [`Session::prepare`] time. Re-executions skip the
/// lexer, parser and validator entirely — binding parameters only
/// substitutes values into a copy of the cached plan.
///
/// DML statements cache the parsed AST and parameter typing; their
/// qualification sub-query is re-planned per execution because it ranges
/// over current data (the cache skips parse + type resolution).
pub struct Prepared<'s> {
    session: &'s Session,
    stmt: Statement,
    /// The statement text, carried into profiles.
    text: String,
    /// Cached plan (SELECT only).
    plan: Option<ResolvedQuery>,
    slots: Vec<ParamSlot>,
    bound: Option<Vec<Value>>,
}

impl<'s> Prepared<'s> {
    fn new(session: &'s Session, mql: &str) -> PrimaResult<Prepared<'s>> {
        let stats = &session.stats;
        stats.parsed();
        let (stmt, names) = parse_statement_params(mql)?;
        let schema = session.access.schema();
        // Validate / plan once. DML statements validate through their
        // SELECT-equivalent so structural errors surface at prepare time.
        let (plan, typing_plan) = match &stmt {
            Statement::Select(q) => {
                stats.planned();
                let p = datasys::validate(schema, q)?;
                (Some(p), None)
            }
            Statement::Delete(d) => {
                stats.planned();
                let q = Query {
                    select: SelectList::All,
                    from: d.from.clone(),
                    predicate: d.predicate.clone(),
                };
                (None, Some(datasys::validate(schema, &q)?))
            }
            Statement::Modify(m) => {
                stats.planned();
                let q = Query {
                    select: SelectList::All,
                    from: m.from.clone(),
                    predicate: m.predicate.clone(),
                };
                (None, Some(datasys::validate(schema, &q)?))
            }
            Statement::Insert(_) => (None, None),
        };
        let mut slots: Vec<ParamSlot> =
            names.into_iter().map(|name| ParamSlot { name, expected: None }).collect();
        infer_param_types(schema, &stmt, plan.as_ref().or(typing_plan.as_ref()), &mut slots)?;
        Ok(Prepared { session, stmt, text: mql.to_string(), plan, slots, bound: None })
    }

    /// The statement's parameter slots, in positional order.
    pub fn params(&self) -> &[ParamSlot] {
        &self.slots
    }

    /// Binds positional values: exactly one per slot, type-checked
    /// against the attribute each parameter is used with.
    pub fn bind(&mut self, values: &[Value]) -> PrimaResult<&mut Self> {
        if values.len() != self.slots.len() {
            return Err(PrimaError::BadStatement(format!(
                "bind arity mismatch: statement has {} parameter(s), got {} value(s)",
                self.slots.len(),
                values.len()
            )));
        }
        for (i, (slot, v)) in self.slots.iter().zip(values).enumerate() {
            if let Some(expected) = &slot.expected {
                expected.check_value(v).map_err(|_| PrimaError::ParamTypeMismatch {
                    slot: i as u16,
                    expected: expected.to_string(),
                    got: format!("{:?}", v.kind()),
                })?;
            }
        }
        self.bound = Some(values.to_vec());
        Ok(self)
    }

    /// Binds by name (`:name` parameters; positional slots are addressed
    /// as `?1`, `?2`, …).
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn bind_named(&mut self, pairs: &[(&str, Value)]) -> PrimaResult<&mut Self> {
        let mut values: Vec<Option<Value>> = vec![None; self.slots.len()];
        for (name, v) in pairs {
            let idx = self
                .slots
                .iter()
                .position(|s| s.name.as_deref() == Some(*name))
                .or_else(|| {
                    name.strip_prefix('?')
                        .and_then(|n| n.parse::<usize>().ok())
                        .and_then(|n| n.checked_sub(1))
                        .filter(|i| *i < self.slots.len())
                })
                .ok_or_else(|| {
                    PrimaError::BadStatement(format!("no parameter named '{name}'"))
                })?;
            values[idx] = Some(v.clone());
        }
        let missing = values.iter().position(std::option::Option::is_none);
        if let Some(i) = missing {
            return Err(PrimaError::UnboundParameter {
                slot: i as u16,
                detail: match &self.slots[i].name {
                    Some(n) => format!("':{n}' was not supplied"),
                    None => "positional slot not supplied".into(),
                },
            });
        }
        // lint: allow(error-hygiene, an earlier loop returned on any None entry)
        let values: Vec<Value> = values.into_iter().map(|v| v.expect("checked")).collect();
        self.bind(&values)
    }

    fn bound_values(&self) -> PrimaResult<&[Value]> {
        if self.slots.is_empty() {
            return Ok(&[]);
        }
        self.bound.as_deref().ok_or(PrimaError::UnboundParameter {
            slot: 0,
            detail: "call bind() before execute()".into(),
        })
    }

    /// Executes with default options. SELECTs return
    /// [`StatementOutcome::Molecules`], manipulations
    /// [`StatementOutcome::Dml`]; re-execution reuses the cached plan.
    pub fn execute(&self) -> PrimaResult<StatementOutcome> {
        self.execute_with(&QueryOptions::default())
    }

    /// [`Prepared::execute`] with explicit [`QueryOptions`].
    pub fn execute_with(&self, opts: &QueryOptions) -> PrimaResult<StatementOutcome> {
        opts.validate()?;
        let params = self.bound_values()?;
        match &self.plan {
            Some(plan) => self.session.statement_scope(StatementKind::Select, &self.text, || {
                self.session.stats.reused();
                let bound;
                let plan = if params.is_empty() {
                    plan
                } else {
                    bound = plan.bind_params(params);
                    &bound
                };
                if let Some(r) =
                    self.session.try_snapshot(|g| self.session.run_plan(plan, opts, g))
                {
                    return Ok(StatementOutcome::Molecules(r?));
                }
                let policy = opts.retry.unwrap_or(self.session.retry);
                let result = self.session.with_txn_retry(&policy, |t| {
                    self.session.run_plan(plan, opts, t.read_guard())
                })?;
                Ok(StatementOutcome::Molecules(result))
            }),
            None => {
                // Not counted as a plan reuse: DML re-runs its
                // qualification sub-query validation per execution (it
                // ranges over current data); only the parse and
                // parameter typing are cached.
                let bound;
                let stmt = if params.is_empty() {
                    &self.stmt
                } else {
                    bound = self.stmt.bind_params(params);
                    &bound
                };
                let policy = opts.retry.unwrap_or(self.session.retry);
                self.session.statement_scope(dml_kind(stmt), &self.text, || {
                    Ok(StatementOutcome::Dml(self.session.run_dml(stmt, &policy)?))
                })
            }
        }
    }

    /// Convenience for SELECTs: execute and unwrap the molecule set.
    pub fn query(&self, opts: &QueryOptions) -> PrimaResult<QueryResult> {
        self.execute_with(opts)?.molecules()
    }

    /// Opens a streaming cursor over this (bound) prepared SELECT.
    pub fn cursor(&self, opts: &QueryOptions) -> PrimaResult<MoleculeCursor<'s>> {
        opts.validate()?;
        let params = self.bound_values()?;
        let plan = self.plan.as_ref().ok_or_else(|| {
            PrimaError::BadStatement("cursors require a SELECT statement".into())
        })?;
        self.session.stats.reused();
        let bound;
        let plan = if params.is_empty() {
            plan
        } else {
            bound = plan.bind_params(params);
            &bound
        };
        MoleculeCursor::open(SessionRef::Borrowed(self.session), plan, opts)
    }
}

/// Infers the expected attribute type of each parameter slot from the
/// position it occurs in: comparisons against a component attribute take
/// that attribute's type; INSERT/MODIFY assignments take the assigned
/// attribute's type.
#[allow(clippy::unwrap_used, clippy::expect_used)]
fn infer_param_types(
    schema: &Schema,
    stmt: &Statement,
    plan: Option<&ResolvedQuery>,
    slots: &mut [ParamSlot],
) -> PrimaResult<()> {
    let note = |slot: u16, ty: AttrType, slots: &mut [ParamSlot]| {
        if let Some(s) = slots.get_mut(slot as usize) {
            if s.expected.is_none() {
                s.expected = Some(ty);
            }
        }
    };
    // Comparison positions (WHERE clauses).
    if let (Some(plan), Some(pred)) = (plan, statement_predicate(stmt)) {
        let mut pairs = Vec::new();
        collect_param_comparisons(pred, &mut pairs);
        for (r, slot) in pairs {
            if let Ok((node, attr)) = resolve_ref(plan, r, schema) {
                // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
                let at = schema.atom_type(plan.nodes[node].atom_type).expect("resolved");
                note(slot, at.attributes[attr].ty.clone(), slots);
            }
        }
    }
    // Assignment positions.
    match stmt {
        Statement::Insert(i) => {
            let at = schema.type_by_name(&i.atom_type).ok_or_else(|| {
                PrimaError::Schema(prima_mad::SchemaError::UnknownAtomType(i.atom_type.clone()))
            })?;
            for (name, ve) in &i.assignments {
                let idx = at.attribute_index(name).ok_or_else(|| {
                    PrimaError::Schema(prima_mad::SchemaError::UnknownAttribute {
                        atom_type: at.name.clone(),
                        attr: name.clone(),
                    })
                })?;
                if let ValueExpr::Param(slot) = ve {
                    note(*slot, at.attributes[idx].ty.clone(), slots);
                }
            }
        }
        Statement::Modify(m) => {
            if let Some(plan) = plan {
                for (target, expr) in &m.assignments {
                    if let SetExpr::Value(ValueExpr::Param(slot)) = expr {
                        if let Ok((node, attr)) = resolve_ref(plan, target, schema) {
                            let at = schema
                                .atom_type(plan.nodes[node].atom_type)
                                // lint: allow(error-hygiene, plan node type ids were resolved against this same frozen schema during validation)
                                .expect("resolved");
                            note(*slot, at.attributes[attr].ty.clone(), slots);
                        }
                    }
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// In-flight cursor-fetch recording state ([`Session::begin_cursor_scope`]).
struct CursorScope(Option<(crate::obs::LayerCounters, Probe, Instant)>);

fn dml_kind(stmt: &Statement) -> StatementKind {
    match stmt {
        Statement::Select(_) => StatementKind::Select,
        Statement::Insert(_) => StatementKind::Insert,
        Statement::Modify(_) => StatementKind::Modify,
        Statement::Delete(_) => StatementKind::Delete,
    }
}

fn statement_predicate(stmt: &Statement) -> Option<&Predicate> {
    match stmt {
        Statement::Select(q) => q.predicate.as_ref(),
        Statement::Delete(d) => d.predicate.as_ref(),
        Statement::Modify(m) => m.predicate.as_ref(),
        Statement::Insert(_) => None,
    }
}

/// Collects `(attribute reference, parameter slot)` pairs from
/// comparisons of the form `ref op ?` / `? op ref`.
fn collect_param_comparisons<'p>(pred: &'p Predicate, out: &mut Vec<(&'p CompRef, u16)>) {
    match pred {
        Predicate::Compare { left, right, .. } => match (left, right) {
            (Operand::Ref(r), Operand::Param(s)) | (Operand::Param(s), Operand::Ref(r)) => {
                out.push((r, *s));
            }
            _ => {}
        },
        Predicate::And(ts) | Predicate::Or(ts) => {
            ts.iter().for_each(|t| collect_param_comparisons(t, out));
        }
        Predicate::Not(t) => collect_param_comparisons(t, out),
        Predicate::ExistsAtLeast { inner, .. } | Predicate::ForAll { inner, .. } => {
            collect_param_comparisons(inner, out);
        }
        Predicate::IsEmpty(_) | Predicate::NotEmpty(_) => {}
    }
}

// ---------------------------------------------------------------------
// Streaming molecule cursor
// ---------------------------------------------------------------------

/// The session a cursor streams through: borrowed from the caller
/// (`Session::query_cursor`, `Prepared::cursor`) or owned outright
/// (`Session::into_cursor`, backing `Prima::query_cursor`).
enum SessionRef<'s> {
    Borrowed(&'s Session),
    Owned(Box<Session>),
}

impl SessionRef<'_> {
    fn get(&self) -> &Session {
        match self {
            SessionRef::Borrowed(s) => s,
            SessionRef::Owned(s) => s,
        }
    }
}

/// A pull-based cursor over the molecules of one query — the paper's
/// "one-molecule-at-a-time interface" surfaced at the facade.
///
/// Opening the cursor performs root access only (key lookup / access
/// path / scan); the component atoms of each molecule are fetched lazily
/// through the level-batched read path when the molecule is pulled via
/// [`MoleculeCursor::fetch`] or iteration. The cursor never buffers
/// assembled molecules between calls, so at most one fetched chunk is
/// alive at a time; dropping it mid-stream simply abandons the remaining
/// (unread) roots without having fixed their pages.
///
/// Isolation-wise the cursor follows the session's read-path split
/// (module docs). Opened **outside a transaction** it pins a snapshot of
/// the committed state for its entire lifetime: open and every fetch are
/// lock-free, roots were already resolved to their snapshot-visible
/// versions at open, and a concurrent writer's commit mid-stream is
/// never observed — the stream is stable from first fetch to last, and
/// the pinned snapshot holds version GC back only while the cursor
/// lives. Opened **inside a transaction**, open and every fetch run
/// under the session's transaction, `Shared`-locking the root extension
/// and each delivered atom. If the session commits or rolls back
/// mid-stream, those locks are released with the transaction and the
/// next fetch reacquires them under the session's fresh transaction —
/// revalidating each root, so rolled-back or deleted atoms never stream
/// out.
pub struct MoleculeCursor<'s> {
    session: SessionRef<'s>,
    access: Arc<AccessSystem>,
    plan: ResolvedQuery,
    clusters: Vec<Arc<AtomClusterType>>,
    roots: VecDeque<Atom>,
    mode: AssemblyMode,
    ctx: AssemblyCtx,
    nodes: Vec<NodeInfo>,
    trace: ExecutionTrace,
    /// `Some` when the cursor was opened outside a transaction: the
    /// pinned snapshot every fetch resolves against (and the thing that
    /// holds version GC back for the stream's lifetime).
    snapshot: Option<Snapshot>,
}

impl<'s> MoleculeCursor<'s> {
    fn open(
        session: SessionRef<'s>,
        plan: &ResolvedQuery,
        opts: &QueryOptions,
    ) -> PrimaResult<MoleculeCursor<'s>> {
        if opts.threads > 1 {
            return Err(PrimaError::BadStatement(
                "cursor delivery is piecewise and serial; use query() for parallel execution"
                    .into(),
            ));
        }
        if plan.has_params() {
            return Err(PrimaError::UnboundParameter {
                slot: 0,
                detail: "bind all parameters before opening a cursor".into(),
            });
        }
        let access = Arc::clone(&session.get().access);
        let mut trace = ExecutionTrace::default();
        let s = session.get();
        // No transaction open → pin a snapshot for the cursor's lifetime
        // and locate roots lock-free against it; otherwise open under the
        // session's transaction, Shared-locking as usual.
        let snapshot = if s.txn.lock().is_none() {
            Some(s.txn_mgr.versions().begin_snapshot())
        } else {
            None
        };
        let roots = match &snapshot {
            Some(snap) => {
                find_roots(&access, plan, &mut trace, Some(ReadGuard::snapshot(snap)))?
            }
            None => s.with_txn(|t| find_roots(&access, plan, &mut trace, Some(t.read_guard())))?,
        };
        trace.roots_inspected = roots.len();
        let clusters = access.cluster_types_of(plan.nodes[0].atom_type);
        Ok(MoleculeCursor {
            session,
            ctx: AssemblyCtx::new(plan),
            nodes: node_infos(plan),
            plan: plan.clone(),
            clusters,
            roots: roots.into(),
            mode: opts.assembly,
            access,
            trace,
            snapshot,
        })
    }

    /// Structure description of the delivered molecules (same indices as
    /// [`crate::datasys::MolAtom::node`]).
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Number of root candidates not yet pulled.
    pub fn remaining_roots(&self) -> usize {
        self.roots.len()
    }

    /// Execution trace so far (root access decision up front; molecule /
    /// atom counts grow as the stream is consumed).
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Pulls and assembles up to `n` molecules — the paper's piecewise
    /// molecule-set delivery. Returns an empty vector when the stream is
    /// exhausted. (Roots whose molecule fails residual qualification are
    /// skipped and do not count towards `n`.)
    pub fn fetch(&mut self, n: usize) -> PrimaResult<Vec<Molecule>> {
        let scope = self.session.get().begin_cursor_scope();
        let result = (|| {
            let mut out = Vec::new();
            while out.len() < n {
                match self.next_molecule()? {
                    Some(m) => out.push(m),
                    None => break,
                }
            }
            Ok(out)
        })();
        self.session.get().end_cursor_scope(scope);
        result
    }

    /// Pulls the molecule set description plus every remaining molecule
    /// (equivalent to what a materialising query would have returned for
    /// the unread tail).
    pub fn fetch_all(&mut self) -> PrimaResult<MoleculeSet> {
        let scope = self.session.get().begin_cursor_scope();
        let result = (|| {
            let mut molecules = Vec::new();
            while let Some(m) = self.next_molecule()? {
                molecules.push(m);
            }
            Ok(MoleculeSet { nodes: self.nodes.clone(), molecules })
        })();
        self.session.get().end_cursor_scope(scope);
        result
    }

    fn next_molecule(&mut self) -> PrimaResult<Option<Molecule>> {
        let Self { session, access, plan, clusters, roots, mode, ctx, trace, snapshot, .. } =
            self;
        if let Some(snap) = snapshot {
            // Snapshot stream: roots were resolved to their visible
            // versions (and qualified) at open against this very
            // snapshot, and the snapshot never moves — no lock, no
            // re-read, no re-qualification. Component assembly resolves
            // against the same snapshot, so a long-lived cursor keeps a
            // stable view across any number of concurrent commits.
            let guard = ReadGuard::snapshot(snap);
            while let Some(root) = roots.pop_front() {
                let mut fetched = 0usize;
                let produced = process_root_traced(
                    access,
                    plan,
                    root,
                    clusters,
                    *mode,
                    ctx,
                    trace,
                    &mut fetched,
                    Some(guard),
                )?;
                trace.atoms_fetched += fetched;
                if let Some(m) = produced {
                    trace.molecules += 1;
                    return Ok(Some(m));
                }
            }
            return Ok(None);
        }
        session.get().with_txn(|txn| {
            let guard = txn.read_guard();
            // Idempotent within one transaction; after a mid-stream
            // commit/rollback this pins the extension under the fresh
            // transaction before any root is revalidated.
            guard.lock_extension(plan.nodes[0].atom_type)?;
            // The root stays at the front of the queue until it has been
            // fully processed: a `LockConflict` mid-lock or mid-assembly
            // leaves it queued, so the documented rollback-and-retry path
            // resumes with the same root instead of silently dropping it
            // from the stream.
            while let Some(front) = roots.front() {
                let id = front.id;
                // Roots were located at open time; the atom may have been
                // deleted (e.g. the owning transaction rolled back) or
                // modified since. Lock and re-read it so the stream never
                // delivers a stale molecule: vanished roots are skipped,
                // surviving ones are re-checked against the root
                // qualification.
                guard.lock_atom(id)?;
                let root = match access.read_atom(id, None) {
                    Ok(current) => {
                        if !plan.root_ssa.eval(&current) {
                            roots.pop_front();
                            continue;
                        }
                        current
                    }
                    Err(prima_access::AccessError::NoSuchAtom(_)) => {
                        roots.pop_front();
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                let mut fetched = 0usize;
                let produced = process_root_traced(
                    access,
                    plan,
                    root,
                    clusters,
                    *mode,
                    ctx,
                    trace,
                    &mut fetched,
                    Some(guard),
                )?;
                roots.pop_front();
                trace.atoms_fetched += fetched;
                if let Some(m) = produced {
                    trace.molecules += 1;
                    return Ok(Some(m));
                }
            }
            Ok(None)
        })
    }
}

impl Iterator for MoleculeCursor<'_> {
    type Item = PrimaResult<Molecule>;

    fn next(&mut self) -> Option<Self::Item> {
        let scope = self.session.get().begin_cursor_scope();
        let result = self.next_molecule().transpose();
        self.session.get().end_cursor_scope(scope);
        result
    }
}
