//! BENCH-4 — multi-session throughput under lock contention.
//!
//! N session threads run a 70/30 read/write mix against one kernel with
//! the default bounded-wait lock table and the default transparent retry
//! policy. Reads are auto-commit point queries — since the MVCC version
//! store they take the lock-free snapshot path, so the lock counters
//! below now measure writer-writer contention only, and any
//! caller-visible read error fails the bench outright. Writes are
//! two-statement transactions over a key *pair* in
//! thread-dependent order, so writers hold exclusive locks across a
//! statement boundary — the window in which other threads genuinely
//! park, and the classic AB/BA deadlock shape. In-transaction conflicts
//! are not retried by the session (by design); the bench plays the
//! application: rollback and re-run the transaction. Two key placements:
//!
//! * `conflict_heavy` — every thread works the same four keys: waits,
//!   timeouts and deadlock victims all occur and must all be absorbed
//!   (by the session retry for reads, by the bench's transaction re-run
//!   for writes).
//! * `disjoint` — each thread owns a private key range; same code path,
//!   near-zero conflicts. The gap between the two series is the price of
//!   contention (queueing + retries), not of the blocking lock table
//!   itself.
//!
//! Reported alongside the Criterion timings: ops/sec per series and the
//! lock-manager counters (waits, wait time, timeouts, deadlocks,
//! victims) over the measured rounds, as one BENCHJSON record each —
//! `scripts/perf_trajectory.sh` collects them into BENCH_4.json.

use criterion::{criterion_group, criterion_main, Criterion};
use prima::{Prima, QueryOptions, Value};
use prima_bench::{report, report_metrics};
use std::time::Instant;

const DDL: &str = "
    CREATE ATOM_TYPE rec (
        rec_id : IDENTIFIER,
        n      : INTEGER,
        body   : CHAR_VAR )
    KEYS_ARE (n);
";

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 24;
/// Keys per thread-visible working set (shared in conflict-heavy mode,
/// private per thread in disjoint mode).
const KEYS: i64 = 4;

fn db_with_keys(ranges: &[i64]) -> Prima {
    let db = Prima::builder().buffer_bytes(16 << 20).build_with_ddl(DDL).unwrap();
    for base in ranges {
        for k in 0..KEYS {
            db.insert("rec", &[("n", Value::Int(base + k)), ("body", Value::Str("seed".into()))])
                .unwrap();
        }
    }
    db
}

/// One round: every thread issues its statement mix. Returns
/// `(ops, bench_level_retries)`. Panics on any caller-visible error on
/// an auto-commit path (the session retry must absorb those) and on a
/// non-retryable error anywhere.
fn run_round(db: &Prima, bases: &[i64]) -> (u64, u64) {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let db = &db;
                let base = bases[t % bases.len()];
                s.spawn(move || {
                    let session = db.session();
                    let mut retries = 0u64;
                    for i in 0..OPS_PER_THREAD {
                        let k1 = base + ((t * 7 + i) as i64 % KEYS);
                        if i % 10 < 7 {
                            // Auto-commit read: conflicts are the session
                            // retry's problem, never the caller's.
                            session
                                .query(
                                    &format!("SELECT ALL FROM rec WHERE n = {k1}"),
                                    &QueryOptions::default(),
                                )
                                .unwrap_or_else(|e| panic!("visible read conflict: {e}"));
                            session.commit().unwrap_or_else(|e| panic!("commit failed: {e}"));
                        } else {
                            // Two-statement write transaction over a key
                            // pair in thread-dependent order: holds X
                            // across a statement boundary (real waits) and
                            // produces AB/BA deadlocks. In-transaction
                            // conflicts surface raw; the bench re-runs the
                            // whole transaction like an application would.
                            let k2 = base + ((t * 3 + i + 1) as i64 % KEYS);
                            let k2 = if k2 == k1 { base + (k2 - base + 1) % KEYS } else { k2 };
                            'txn: for attempt in 0.. {
                                for k in [k1, k2] {
                                    if let Err(e) = session.execute(&format!(
                                        "MODIFY rec SET body = 'w{t}-{i}' WHERE n = {k}"
                                    )) {
                                        assert!(
                                            e.is_retryable() && attempt < 50,
                                            "write txn failed hard (attempt {attempt}): {e}"
                                        );
                                        session.rollback().expect("rollback after conflict");
                                        retries += 1;
                                        continue 'txn;
                                    }
                                }
                                session.commit().unwrap_or_else(|e| panic!("commit failed: {e}"));
                                break;
                            }
                        }
                    }
                    (OPS_PER_THREAD as u64, retries)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).fold(
            (0, 0),
            |(ops, retries), (o, r)| (ops + o, retries + r),
        )
    })
}

fn run_series(c: &mut Criterion, series: &str, bases: Vec<i64>) {
    let db = db_with_keys(&bases);
    let mut g = c.benchmark_group("multi_session");
    g.sample_size(15);
    g.bench_function(format!("{series}_{THREADS}x{OPS_PER_THREAD}"), |b| {
        b.iter(|| run_round(&db, &bases))
    });
    g.finish();

    // A dedicated timed window for throughput + lock counters, outside
    // the Criterion sampling so the counters match the ops exactly.
    const ROUNDS: u64 = 10;
    let before = db.lock_stats();
    let t0 = Instant::now();
    let (mut ops, mut retries) = (0u64, 0u64);
    for _ in 0..ROUNDS {
        let (o, r) = run_round(&db, &bases);
        ops += o;
        retries += r;
    }
    let secs = t0.elapsed().as_secs_f64();
    let d = db.lock_stats().since(&before);
    let ops_per_sec = ops as f64 / secs;

    report("BENCH-4", &format!("{series}/ops_per_sec"), "ops/s", format!("{ops_per_sec:.0}"));
    report("BENCH-4", &format!("{series}/lock_waits"), "count", d.waits);
    report(
        "BENCH-4",
        &format!("{series}/wait_us_per_op"),
        "µs",
        format!("{:.1}", d.wait_us_total as f64 / ops.max(1) as f64),
    );
    report("BENCH-4", &format!("{series}/timeouts"), "count", d.timeouts);
    report(
        "BENCH-4",
        &format!("{series}/deadlocks"),
        "count",
        format!("{} ({} victims)", d.deadlocks_detected, d.victims),
    );
    report("BENCH-4", &format!("{series}/txn_reruns"), "count", retries);
    println!(
        "BENCHJSON {{\"bench\":\"multi_session\",\"series\":\"{series}\",\
\"threads\":{THREADS},\"ops\":{ops},\"ops_per_sec\":{ops_per_sec:.0},\
\"lock_waits\":{},\"wait_us_total\":{},\"timeouts\":{},\"deadlocks\":{},\
\"victims\":{},\"max_queue_depth\":{},\"txn_reruns\":{retries}}}",
        d.waits, d.wait_us_total, d.timeouts, d.deadlocks_detected, d.victims, d.max_queue_depth,
    );
    report_metrics(&format!("multi_session/{series}"), &db);
}

fn bench_multi_session(c: &mut Criterion) {
    // All threads share one base → one hot key set.
    run_series(c, "conflict_heavy", vec![0]);
    // Each thread owns base 1000*t → no cross-thread conflicts.
    run_series(c, "disjoint", (0..THREADS as i64).map(|t| 1_000 * t).collect());
}

criterion_group!(benches, bench_multi_session);
criterion_main!(benches);
