//! BENCH-3 — commit latency under the durability subsystem.
//!
//! Three regimes over the same INSERT workload (SimDisk device, so the
//! numbers isolate kernel + log-protocol cost, and the simulated
//! device-time axis shows what a real arm would pay):
//!
//! * `no_wal` — volatile kernel: commit releases locks, nothing else;
//! * `wal_force_each` — durable kernel, one statement per transaction:
//!   every commit appends its records and forces the log (one
//!   sequential device append per commit);
//! * `wal_group_N` — durable kernel, N statements per transaction: the
//!   group buffer amortises one force over N statements' records — the
//!   "group-sized batches" point of the WAL design.
//!
//! Reported alongside wall-clock: WAL forces and bytes per committed
//! statement, and the simulated device time per statement — the axis on
//! which one sequential log append beats the scattered page write-back
//! it replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use prima::{Prima, PrimaBuilder};
use prima_bench::{report, report_metrics};
use prima_storage::{BlockDevice, SimDisk};
use std::sync::Arc;

const DDL: &str = "
    CREATE ATOM_TYPE rec (
        rec_id : IDENTIFIER,
        n      : INTEGER,
        body   : CHAR_VAR );
";

fn volatile_db() -> Prima {
    Prima::builder().buffer_bytes(16 << 20).build_with_ddl(DDL).unwrap()
}

fn durable_db() -> (Prima, Arc<SimDisk>) {
    let disk = Arc::new(SimDisk::new());
    let db = PrimaBuilder::default()
        .buffer_bytes(16 << 20)
        .device(Arc::clone(&disk) as Arc<dyn BlockDevice>)
        .durable()
        .build_with_ddl(DDL)
        .unwrap();
    (db, disk)
}

/// Runs `total` INSERTs, committing every `per_commit` statements.
/// Returns the number of commits.
fn run_inserts(db: &Prima, next_no: &mut i64, total: usize, per_commit: usize) -> u64 {
    let session = db.session();
    let mut commits = 0u64;
    for i in 0..total {
        let n = *next_no;
        *next_no += 1;
        session
            .execute(&format!("INSERT rec (n: {n}, body: 'payload row {n}')"))
            .unwrap();
        if (i + 1) % per_commit == 0 {
            session.commit().unwrap();
            commits += 1;
        }
    }
    session.commit().unwrap();
    commits
}

fn bench_wal_commit(c: &mut Criterion) {
    const BATCH: usize = 32;
    let mut g = c.benchmark_group("wal_commit");
    g.sample_size(30);

    // Regime 1: no WAL at all.
    {
        let db = volatile_db();
        let mut no = 0i64;
        g.bench_function("no_wal_commit_each", |b| {
            b.iter(|| run_inserts(&db, &mut no, BATCH, 1))
        });
        report_metrics("wal_commit/no_wal", &db);
    }

    // Regime 2: durable, force per statement-commit.
    {
        let (db, disk) = durable_db();
        let mut no = 0i64;
        let before = disk.stats().snapshot();
        let mut stmts = 0u64;
        g.bench_function("wal_force_each_commit", |b| {
            b.iter(|| {
                stmts += BATCH as u64;
                run_inserts(&db, &mut no, BATCH, 1)
            })
        });
        let d = disk.stats().snapshot().since(&before);
        report(
            "BENCH-3",
            "force_each/forces_per_stmt",
            "ratio",
            format!("{:.2}", d.wal_forces as f64 / stmts.max(1) as f64),
        );
        report(
            "BENCH-3",
            "force_each/wal_bytes_per_stmt",
            "bytes",
            d.wal_bytes / stmts.max(1),
        );
        report(
            "BENCH-3",
            "force_each/device_us_per_stmt",
            "sim-us",
            d.sim_time_ns / 1000 / stmts.max(1),
        );
        report_metrics("wal_commit/force_each", &db);
    }

    // Regime 3: durable, one force per group of statements.
    for group in [8usize, 32] {
        let (db, disk) = durable_db();
        let mut no = 0i64;
        let before = disk.stats().snapshot();
        let mut stmts = 0u64;
        g.bench_function(format!("wal_group_{group}"), |b| {
            b.iter(|| {
                stmts += BATCH as u64;
                run_inserts(&db, &mut no, BATCH, group)
            })
        });
        let d = disk.stats().snapshot().since(&before);
        report(
            "BENCH-3",
            &format!("group_{group}/forces_per_stmt"),
            "ratio",
            format!("{:.2}", d.wal_forces as f64 / stmts.max(1) as f64),
        );
        report(
            "BENCH-3",
            &format!("group_{group}/device_us_per_stmt"),
            "sim-us",
            d.sim_time_ns / 1000 / stmts.max(1),
        );
        report_metrics(&format!("wal_commit/group_{group}"), &db);
    }

    g.finish();
}

criterion_group!(benches, bench_wal_commit);
criterion_main!(benches);
